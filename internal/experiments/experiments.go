// Package experiments contains one runner per table and figure of the
// PolygraphMR paper's evaluation (DESIGN.md §3 maps each experiment to the
// modules it exercises). Each runner produces a Result whose rows mirror
// the series the paper reports; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/perf"
)

// Context carries the shared state of an experiment run: the model zoo
// (with its trained-member and recorded-output caches), the dataset profile
// and the GPU cost model.
type Context struct {
	Zoo *model.Zoo
	GPU perf.GPU

	// Workers caps the worker pool used by throughput experiments
	// (ext-throughput); 0 selects runtime.NumCPU().
	Workers int

	// Backend selects the numeric execution backend for throughput
	// experiments ("f64", "f32" or "int8"; empty = f64). Reduced backends
	// run the compiled kernels of internal/nn (DESIGN.md §9).
	Backend string

	// Verified turns on ABFT checksum verification (DESIGN.md §10) for the
	// systems throughput-style experiments build, so overhead is measured
	// with kernel epilogues checking row/column sums.
	Verified bool

	// CacheMB and CacheTTL parameterize the prediction cache the ext-caching
	// experiment attaches (budget in MiB; TTL 0 = entries never expire), and
	// ZipfS is the skew exponent (> 1) of its duplicate-heavy workload.
	CacheMB  int
	CacheTTL time.Duration
	ZipfS    float64

	// CacheDir, when non-empty, is where the ext-caching2 experiment keeps
	// its persistent L2 tier; empty selects a run-scoped temp directory.
	CacheDir string

	// SLO is the per-request latency budget the ext-slo experiment steers
	// the adaptive cascade to (must be > 0; default 50ms — enough headroom
	// over the serving tail-noise floor of a small shared-core machine
	// that the budget is attainable at all).
	SLO time.Duration

	// designs memoizes greedy designs per (benchmark, size).
	designs map[string]*core.Design
}

// NewContext builds a context on the default zoo (repo-local disk cache,
// PGMR_FULL-selected profile) and the TITAN-X-like GPU model.
func NewContext() *Context {
	return &Context{
		Zoo: model.DefaultZoo(), GPU: perf.TitanX(),
		CacheMB: 64, ZipfS: 1.1, SLO: 50 * time.Millisecond,
		designs: map[string]*core.Design{},
	}
}

// Profile returns the active dataset profile.
func (c *Context) Profile() dataset.Profile { return c.Zoo.Profile }

// CandidatePool returns the preprocessor candidate pool for greedy design.
// It is the Table I pool minus Hist (redundant with AdHist at our image
// sizes) — Scale(0.8) is examined separately by the Fig. 8 experiment as
// the paper's example of a weak diversity source.
func (c *Context) CandidatePool() []model.Variant {
	names := []string{"AdHist", "ConNorm", "FlipX", "FlipY", "Gamma(1.5)", "Gamma(2)", "ImAdj"}
	vs := make([]model.Variant, len(names))
	for i, n := range names {
		vs[i] = model.Variant{Preproc: n}
	}
	return vs
}

// Design returns the memoized greedy n-member design for a benchmark.
func (c *Context) Design(b model.Benchmark, n int) (*core.Design, error) {
	key := fmt.Sprintf("%s/%d", b.Name, n)
	if d, ok := c.designs[key]; ok {
		return d, nil
	}
	d, err := core.GreedyDesign(c.Zoo, b, c.CandidatePool(), n)
	if err != nil {
		return nil, err
	}
	c.designs[key] = d
	return d, nil
}

// InitVariants returns ORG plus n−1 random-init replicas — the traditional
// MR configuration.
func InitVariants(n int) []model.Variant {
	vs := make([]model.Variant, n)
	for i := 1; i < n; i++ {
		vs[i] = model.Variant{Init: i}
	}
	return vs
}

// Result is a rendered experiment outcome.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// CacheTiers is the machine-readable cache-tier summary attached by the
	// caching experiments; nil elsewhere. It reaches pgmr-bench's -json
	// output verbatim, so dashboards can track tier behavior without parsing
	// table rows.
	CacheTiers *CacheTierStats `json:",omitempty"`
}

// CacheTierStats summarizes prediction-cache traffic per tier after an
// experiment's final pass. Promotions equals L2Hits (every disk hit is
// promoted into memory); FlushBacklog is the write-behind queue depth at
// snapshot time.
type CacheTierStats struct {
	L1Hits       uint64
	L2Hits       uint64
	Misses       uint64
	Coalesced    uint64
	Promotions   uint64
	FlushBacklog int64
	L2Flushed    uint64
	L2Dropped    uint64
	Entries      int
	L2Entries    int
}

// cacheTierStats converts a cache snapshot into the JSON summary.
func cacheTierStats(st core.CacheStats) *CacheTierStats {
	return &CacheTierStats{
		L1Hits:       st.Hits - st.L2Hits,
		L2Hits:       st.L2Hits,
		Misses:       st.Misses,
		Coalesced:    st.Coalesced,
		Promotions:   st.L2Hits,
		FlushBacklog: st.L2Backlog,
		L2Flushed:    st.L2Flushed,
		L2Dropped:    st.L2Dropped,
		Entries:      st.Entries,
		L2Entries:    st.L2Entries,
	}
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a free-form note line.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders an aligned plain-text table.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Runner executes one experiment.
type Runner func(*Context) (*Result, error)

// registry maps experiment ids to runners, populated by the fig_*.go files.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs returns all experiment ids in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(ctx *Context, id string) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(ctx)
}

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// f3 formats a float at 3 decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
