package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
)

func init() {
	register("ext-softvote", ExtSoftVote)
}

// ExtSoftVote is an ablation of the Layer-3 policy itself: the paper's hard
// vote histogram with (Thr_Conf, Thr_Freq) against a classic soft-voting
// ensemble gate (mean distribution + confidence threshold) on the same
// member outputs. Soft voting is what the deep-ensembles literature the
// paper cites (§V, Lakshminarayanan et al.) would do; hard voting exposes
// explicit disagreement, which the paper argues is the unreliability
// symptom worth detecting. The experiment reports, per benchmark, the best
// FP achievable by each policy at the 100%-TP floor on the same 4_PGMR
// members.
func ExtSoftVote(ctx *Context) (*Result, error) {
	res := &Result{
		ID: "ext-softvote", Title: "Decision-policy ablation: hard vote vs soft vote (extension; paper §V ensembles)",
		Header: []string{"benchmark", "hard FP@floor", "soft FP@floor", "hard norm", "soft norm"},
	}
	for _, b := range model.Benchmarks() {
		design, err := ctx.Design(b, 4)
		if err != nil {
			return nil, err
		}
		valRec, err := core.BuildRecorded(ctx.Zoo, b, design.Variants, model.SplitVal)
		if err != nil {
			return nil, err
		}
		testRec, err := core.BuildRecorded(ctx.Zoo, b, design.Variants, model.SplitTest)
		if err != nil {
			return nil, err
		}
		baseValAcc, err := ctx.Zoo.Accuracy(b, model.Variant{}, model.SplitVal)
		if err != nil {
			return nil, err
		}
		orgAcc, err := ctx.Zoo.Accuracy(b, model.Variant{}, model.SplitTest)
		if err != nil {
			return nil, err
		}
		orgFP := 1 - orgAcc

		// Hard policy: profiled thresholds at the val TP floor (fallback to
		// the max-TP frontier point when the floor is unreachable).
		hardTh, _, ok := valRec.SelectThresholds(baseValAcc)
		if !ok {
			frontier := valRec.Pareto()
			hardTh = frontier[len(frontier)-1].Meta.(core.Thresholds)
		}
		hard := testRec.Evaluate(hardTh)

		// Soft policy: pick the mean-confidence threshold the same way.
		softFrontier := valRec.SoftPareto(denseConfGrid())
		softConf := 0.0
		if best, okf := metrics.BestUnderTPFloor(softFrontier, baseValAcc); okf {
			softConf = best.Meta.(float64)
		} else if len(softFrontier) > 0 {
			softConf = softFrontier[len(softFrontier)-1].Meta.(float64)
		}
		soft := metrics.Tally(testRec.SoftOutcomes(softConf), testRec.Labels)

		res.AddRow(b.Display, pct(hard.FP), pct(soft.FP), pct(hard.FP/orgFP), pct(soft.FP/orgFP))
	}
	res.AddNote("both policies profiled on val at the 100%%-TP floor and evaluated on test over identical member outputs")
	res.AddNote("hard voting exposes explicit member disagreement; soft voting can average a confident wrong majority back into an accepted answer")
	return res, nil
}

// denseConfGrid is a finer threshold grid for the scalar soft-vote sweep.
func denseConfGrid() []float64 {
	var cs []float64
	for c := 0.0; c < 0.99; c += 0.02 {
		cs = append(cs, c)
	}
	return cs
}
