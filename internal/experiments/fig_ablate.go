package experiments

import (
	"fmt"

	"repro/internal/calibrate"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/model"
)

func init() {
	register("fig13", Fig13AblationPareto)
	register("fig14", Fig14TemperatureScaling)
}

// fig13WideCopies is the size of the wide weight-init MR ensemble the
// 6_PGMR is challenged with (the paper uses 100; the fast profile uses 14 —
// already 2.3× the PGMR size — to bound single-CPU training time).
func fig13WideCopies(p dataset.Profile) int {
	if p == dataset.Full {
		return 100
	}
	return 14
}

// Fig13AblationPareto reproduces Fig. 13 on ConvNet/CIFAR-10: it separates
// the contribution of the decision engine (6_MR vs 6_MR_DE) from the
// contribution of preprocessing diversity (6_MR_DE vs 6_PGMR), and
// challenges 6_PGMR with a much wider weight-init ensemble (N_MR_DE).
func Fig13AblationPareto(ctx *Context) (*Result, error) {
	b, err := model.ByName("convnet")
	if err != nil {
		return nil, err
	}
	orgAcc, err := ctx.Zoo.Accuracy(b, model.Variant{}, model.SplitTest)
	if err != nil {
		return nil, err
	}
	orgFP := 1 - orgAcc
	wide := fig13WideCopies(ctx.Profile())

	design, err := ctx.Design(b, 6)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID: "fig13", Title: "Decision-engine and preprocessing ablation (paper Fig. 13, ConvNet)",
		Header: []string{"system", "members", "norm FP", "norm TP", "thresholds"},
	}

	// 6_MR: majority vote over six weight-init replicas (no engine).
	mr6, err := core.BuildRecorded(ctx.Zoo, b, InitVariants(6), model.SplitTest)
	if err != nil {
		return nil, err
	}
	majRates := mr6.Evaluate(core.Majority(6))
	res.AddRow("6_MR (majority)", "6", pct(majRates.FP/orgFP), pct(majRates.TP/orgAcc), core.Majority(6).String())

	// Engine-based systems share the floor-profiled evaluation.
	for _, cfg := range []struct {
		name     string
		variants []model.Variant
	}{
		{"6_MR_DE", InitVariants(6)},
		{fmt.Sprintf("%d_MR_DE", wide), InitVariants(wide)},
		{"6_PGMR", design.Variants},
	} {
		fe, err := evalAtFloor(ctx, b, cfg.variants)
		if err != nil {
			return nil, err
		}
		mark := ""
		if !fe.Feasible {
			mark = "*"
		}
		res.AddRow(cfg.name, fmt.Sprint(len(cfg.variants)),
			pct(fe.Test.FP/orgFP)+mark, pct(fe.Test.TP/orgAcc), fe.Th.String())
	}
	res.AddNote("paper: decision engine adds 4.1%% detection over majority; preprocessing adds 18.5%% over 6_MR_DE; 6_PGMR beats even 100_MR_DE by 15.3%%")
	res.AddNote("* = TP floor unreachable on val; max-TP fallback used")
	return res, nil
}

// Fig14TemperatureScaling reproduces Fig. 14 (§IV-E): temperature scaling
// shifts the TP/FP-vs-threshold curves but leaves the achievable (TP, FP)
// frontier unchanged, so the confidence-reliability problem remains.
func Fig14TemperatureScaling(ctx *Context) (*Result, error) {
	ths := []float64{0.3, 0.5, 0.7, 0.9}
	header := []string{"benchmark", "T", "series"}
	for _, t := range ths {
		header = append(header, fmt.Sprintf("t=%.1f", t))
	}
	res := &Result{ID: "fig14", Title: "Temperature scaling (paper Fig. 14)", Header: header}

	for _, name := range []string{"alexnet", "resnet34"} {
		b, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		valLogits, err := ctx.Zoo.Logits(b, model.Variant{}, model.SplitVal)
		if err != nil {
			return nil, err
		}
		valLabels, err := ctx.Zoo.Labels(b, model.SplitVal)
		if err != nil {
			return nil, err
		}
		testLogits, err := ctx.Zoo.Logits(b, model.Variant{}, model.SplitTest)
		if err != nil {
			return nil, err
		}
		testLabels, err := ctx.Zoo.Labels(b, model.SplitTest)
		if err != nil {
			return nil, err
		}
		rep, err := calibrate.Evaluate(valLogits, valLabels, testLogits, testLabels)
		if err != nil {
			return nil, err
		}

		before := metrics.SoftmaxAll(testLogits)
		after := metrics.SoftmaxAllTemp(testLogits, rep.Temperature)
		for _, series := range []struct {
			label string
			probs [][]float64
		}{
			{"FP original", before}, {"FP scaled", after},
			{"TP original", before}, {"TP scaled", after},
		} {
			row := []string{b.Display, fmt.Sprintf("%.2f", rep.Temperature), series.label}
			for _, p := range metrics.ThresholdSweep(series.probs, testLabels, ths) {
				if series.label[:2] == "FP" {
					row = append(row, pct(p.Rates.FP))
				} else {
					row = append(row, pct(p.Rates.TP))
				}
			}
			res.AddRow(row...)
		}

		// Frontier preservation: best FP at the baseline-TP floor before and
		// after scaling (the paper's "Pareto frontier unchanged").
		orgAcc := metrics.Accuracy(before, testLabels)
		frontierFP := func(probs [][]float64) string {
			var ths2 []float64
			ths2 = append(ths2, 0)
			for _, p := range probs {
				ths2 = append(ths2, p[metrics.Argmax(p)])
			}
			var pts []metrics.Point
			for _, p := range metrics.ThresholdSweep(probs, testLabels, ths2) {
				pts = append(pts, metrics.Point{TP: p.Rates.TP, FP: p.Rates.FP})
			}
			if best, ok := metrics.BestUnderTPFloor(metrics.ParetoFrontier(pts), orgAcc); ok {
				return pct(best.FP)
			}
			return "-"
		}
		res.AddNote("%s: T=%.2f, ECE %.4f -> %.4f, FP@TP-floor original %s vs scaled %s (frontier preserved when equal)",
			b.Display, rep.Temperature, rep.ECEBefore, rep.ECEAfter,
			frontierFP(before), frontierFP(after))
	}
	res.AddNote("paper finding: scaling lowers confidences (curves shift) but the TP/FP Pareto frontier is unchanged")
	return res, nil
}
