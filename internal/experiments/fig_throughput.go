package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tensor"
)

func init() {
	register("ext-throughput", ExtThroughput)
}

// ExtThroughput is an extension beyond the paper's figures: it measures the
// wall-clock throughput of the three live execution strategies of
// core.System — sequential member evaluation, parallel member evaluation
// inside Classify (speculative staged activation on a worker pool), and
// batched classification with per-worker scratch arenas — on one real
// benchmark system. The paper argues MR is affordable because redundant
// networks run concurrently on parallel hardware ("Cost Containment");
// this experiment is the software realization of that claim.
//
// All three strategies must produce identical decisions; the experiment
// verifies that on every frame before reporting numbers.
func ExtThroughput(ctx *Context) (*Result, error) {
	b, err := model.ByName("convnet")
	if err != nil {
		return nil, err
	}
	design, err := ctx.Design(b, 4)
	if err != nil {
		return nil, err
	}
	sys, err := core.BuildSystem(ctx.Zoo, b, design.Variants)
	if err != nil {
		return nil, err
	}
	sys.Workers = ctx.Workers

	ds, err := ctx.Zoo.Dataset(b.DatasetName)
	if err != nil {
		return nil, err
	}
	backend, err := core.ParseBackend(ctx.Backend)
	if err != nil {
		return nil, fmt.Errorf("ext-throughput: %w", err)
	}
	if backend != core.BackendF64 {
		for i := range sys.Members {
			sys.Members[i].Backend = backend
		}
		calib := make([]*tensor.T, 0, 16)
		for i := 0; i < len(ds.Val) && i < 16; i++ {
			calib = append(calib, ds.Val[i].X)
		}
		if err := sys.PrepareBackends(calib); err != nil {
			return nil, fmt.Errorf("ext-throughput: %w", err)
		}
	}
	if ctx.Verified {
		sys.PrepareVerified(true)
	}
	n := len(ds.Test)
	if n > 256 {
		n = 256
	}
	xs := make([]*tensor.T, n)
	for i := 0; i < n; i++ {
		xs[i] = ds.Test[i].X
	}

	run := func(f func() []core.Decision) ([]core.Decision, time.Duration) {
		start := time.Now()
		d := f()
		return d, time.Since(start)
	}
	seqOne := func() []core.Decision {
		sys.Parallel = false
		out := make([]core.Decision, n)
		for i, x := range xs {
			out[i] = sys.Classify(x)
		}
		return out
	}
	parOne := func() []core.Decision {
		sys.Parallel = true
		out := make([]core.Decision, n)
		for i, x := range xs {
			out[i] = sys.Classify(x)
		}
		sys.Parallel = false
		return out
	}
	batched := func() []core.Decision { return sys.ClassifyBatch(xs) }

	seqD, seqT := run(seqOne)
	parD, parT := run(parOne)
	batD, batT := run(batched)

	// On the f64 backend all three strategies are bit-identical, so any
	// divergence is a bug. Reduced backends share the same compiled nets
	// across strategies, but the f32 FMA GEMM's tile boundaries depend on
	// the batch geometry, so a near-tie frame may legitimately flip; there
	// we count divergences and tolerate a ≤1% fraction (reported below).
	diverged := 0
	for i := range seqD {
		if seqD[i].Label != parD[i].Label || seqD[i].Reliable != parD[i].Reliable ||
			seqD[i].Activated != parD[i].Activated {
			return nil, fmt.Errorf("ext-throughput: parallel decision diverges on frame %d", i)
		}
		if seqD[i].Label != batD[i].Label || seqD[i].Reliable != batD[i].Reliable ||
			seqD[i].Activated != batD[i].Activated {
			if backend == core.BackendF64 {
				return nil, fmt.Errorf("ext-throughput: batch decision diverges on frame %d", i)
			}
			diverged++
		}
	}
	if diverged > n/100 {
		return nil, fmt.Errorf("ext-throughput: %s batch decisions diverge on %d/%d frames", backend, diverged, n)
	}

	res := &Result{
		ID: "ext-throughput", Title: "Live inference throughput by execution strategy (extension; RAMR/RADE cost containment)",
		Header: []string{"strategy", "frames", "wall", "frames/sec", "speedup"},
	}
	row := func(name string, wall time.Duration) {
		res.AddRow(name, fmt.Sprint(n),
			wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", float64(n)/wall.Seconds()),
			fmt.Sprintf("%.2fx", seqT.Seconds()/wall.Seconds()))
	}
	row("sequential Classify", seqT)
	row("parallel Classify", parT)
	row("ClassifyBatch", batT)
	workers := ctx.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	res.AddNote("4-member %s system, staged activation, %s backend, %d worker(s) on %d CPU(s)",
		b.Name, backend, workers, runtime.NumCPU())
	if ctx.Verified {
		res.AddNote("ABFT checksum verification enabled (-verified); ext-abft isolates the verification overhead")
	}
	if backend == core.BackendF64 {
		res.AddNote("decisions verified identical across strategies")
	} else {
		res.AddNote("decisions verified across strategies: %d/%d batch frames diverged (near-tie %s rounding)", diverged, n, backend)
	}
	return res, nil
}
