package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/nn"
)

func init() {
	register("ext-faults", ExtTransientFaults)
}

// ExtTransientFaults is an extension connecting PolygraphMR to the
// transient-fault MR literature the paper discusses (§III-C, §V): weight
// bit flips are injected into ONE member of the system and into the
// standalone ORG network, and the experiment measures
//
//   - how much accuracy the standalone CNN silently loses (its errors are
//     undetectable without redundancy), versus
//   - how the PolygraphMR decision engine absorbs the same faults: the
//     corrupted member's divergent votes are outvoted or flagged, so the
//     system's undetected-misprediction (FP) rate barely moves.
//
// This is the regime where the paper notes traditional MR *does* work —
// faults are rare and uncorrelated — and PolygraphMR inherits that
// robustness for free.
func ExtTransientFaults(ctx *Context) (*Result, error) {
	b, err := model.ByName("convnet")
	if err != nil {
		return nil, err
	}
	design, err := ctx.Design(b, 4)
	if err != nil {
		return nil, err
	}
	fe, err := evalAtFloor(ctx, b, design.Variants)
	if err != nil {
		return nil, err
	}
	ds, err := ctx.Zoo.Dataset(b.DatasetName)
	if err != nil {
		return nil, err
	}
	labels, err := ctx.Zoo.Labels(b, model.SplitTest)
	if err != nil {
		return nil, err
	}
	// Evaluation subset keeps per-round inference affordable.
	const evalN = 200
	samples := ds.Test[:evalN]
	subLabels := labels[:evalN]

	// Pristine member outputs on the subset (members other than the
	// faulted one are unaffected across rounds).
	memberProbs := make([][][]float64, len(design.Variants))
	nets := make([]*nn.Network, len(design.Variants))
	for m, v := range design.Variants {
		net, err := ctx.Zoo.Network(b, v)
		if err != nil {
			return nil, err
		}
		pp, err := v.Preprocessor()
		if err != nil {
			return nil, err
		}
		nets[m] = net
		memberProbs[m] = make([][]float64, evalN)
		for i, s := range samples {
			memberProbs[m][i] = append([]float64(nil), net.Infer(pp.Apply(s.X)).Data...)
		}
	}
	orgPre, err := design.Variants[0].Preprocessor()
	if err != nil {
		return nil, err
	}

	cleanOrgAcc := metrics.Accuracy(memberProbs[0], subLabels)
	cleanRec, err := core.NewRecorded(memberProbs, subLabels)
	if err != nil {
		return nil, err
	}
	cleanRates := cleanRec.Evaluate(fe.Th)

	res := &Result{
		ID: "ext-faults", Title: "Transient weight faults: standalone CNN vs PolygraphMR (extension; paper §III-C/§V)",
		Header: []string{"faults/member", "ORG acc", "ORG acc drop", "PGMR FP", "PGMR TP", "flagged"},
	}
	res.AddRow("0 (clean)", pct(cleanOrgAcc), "-", pct(cleanRates.FP), pct(cleanRates.TP),
		pct(cleanRates.TN+cleanRates.FN))

	const rounds = 5
	for _, nFaults := range []int{4, 16, 64} {
		var orgAccSum, fpSum, tpSum, flagSum float64
		_, err := faults.Campaign(nets[0], faults.BitFlip, nFaults, rounds, 40+int64(nFaults), func(round int) float64 {
			// Recompute only the faulted member's outputs.
			faulted := make([][]float64, evalN)
			for i, s := range samples {
				faulted[i] = append([]float64(nil), nets[0].Infer(orgPre.Apply(s.X)).Data...)
			}
			orgAccSum += metrics.Accuracy(faulted, subLabels)
			probs := append([][][]float64{faulted}, memberProbs[1:]...)
			rec, err := core.NewRecorded(probs, subLabels)
			if err != nil {
				return 0
			}
			rates := rec.Evaluate(fe.Th)
			fpSum += rates.FP
			tpSum += rates.TP
			flagSum += rates.TN + rates.FN
			return rates.FP
		})
		if err != nil {
			return nil, err
		}
		orgAcc := orgAccSum / rounds
		res.AddRow(fmt.Sprint(nFaults),
			pct(orgAcc), pct(cleanOrgAcc-orgAcc),
			pct(fpSum/rounds), pct(tpSum/rounds), pct(flagSum/rounds))
	}
	res.AddNote("faults are bit flips in the ORG member's weights; %d rounds averaged per level, %d test samples", rounds, evalN)
	res.AddNote("expectation: the standalone CNN silently degrades while the system's FP stays near clean — redundancy absorbs rare uncorrelated faults (the regime where classic MR works)")
	res.AddNote("severity is dominated by rare catastrophic exponent flips, so mean damage is not monotone in the fault count across few rounds")
	return res, nil
}
