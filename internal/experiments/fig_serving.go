package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	polygraph "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/server"
	"repro/internal/server/telemetry"
	"repro/internal/tensor"
)

func init() {
	register("ext-serving", ExtServing)
}

// servingBackend adapts a zoo-built core.System to the server.Backend
// interface, so the serving experiment reuses the Context's trained members
// instead of rebuilding through polygraph.Build.
type servingBackend struct {
	sys     *core.System
	inShape []int
}

func (b servingBackend) InputShape() (int, int, int) {
	return b.inShape[0], b.inShape[1], b.inShape[2]
}

func (b servingBackend) ClassifyBatchContext(ctx context.Context, images []polygraph.Image) ([]polygraph.Prediction, error) {
	xs := make([]*tensor.T, len(images))
	for i, im := range images {
		xs[i] = tensor.FromSlice(im.Pixels, im.Channels, im.Height, im.Width)
	}
	ds, err := b.sys.ClassifyBatchContext(ctx, xs)
	if err != nil {
		return nil, err
	}
	preds := make([]polygraph.Prediction, len(ds))
	for i, d := range ds {
		preds[i] = polygraph.Prediction{
			Label: d.Label, Reliable: d.Reliable, Confidence: d.Confidence,
			Activated: d.Activated, Agreement: d.Votes[d.Label],
		}
	}
	return preds, nil
}

// ExtServing is an extension beyond the paper's figures: it stands up the
// HTTP serving subsystem (dynamic batching + admission control) on
// localhost, drives it with closed-loop concurrent clients, and reports
// end-to-end throughput and latency percentiles per concurrency level —
// the serving-side counterpart of ext-throughput. The paper's §IV-C
// latency-budget discussion is about exactly this deployment shape: how
// much wall-clock the redundant system costs once requests arrive over a
// network interface instead of a benchmark loop.
func ExtServing(ctx *Context) (*Result, error) {
	b, err := model.ByName("convnet")
	if err != nil {
		return nil, err
	}
	design, err := ctx.Design(b, 4)
	if err != nil {
		return nil, err
	}
	sys, err := core.BuildSystem(ctx.Zoo, b, design.Variants)
	if err != nil {
		return nil, err
	}
	sys.Workers = ctx.Workers

	ds, err := ctx.Zoo.Dataset(b.DatasetName)
	if err != nil {
		return nil, err
	}
	n := len(ds.Test)
	if n > 64 {
		n = 64
	}
	images := make([]polygraph.Image, n)
	for i := 0; i < n; i++ {
		s := ds.Test[i]
		images[i] = polygraph.Image{
			Channels: s.X.Shape[0], Height: s.X.Shape[1], Width: s.X.Shape[2],
			Pixels: s.X.Data,
		}
	}

	metrics := telemetry.NewMetrics(len(sys.Members))
	srv, err := server.New(server.Config{
		Backend:     servingBackend{sys: sys, inShape: ds.InShape},
		BatchWindow: 2 * time.Millisecond,
		MaxBatch:    32,
		QueueDepth:  1024,
		Metrics:     metrics,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(dctx)
		_ = hs.Shutdown(dctx)
	}()

	requests := 150
	if ctx.Profile() == dataset.Full {
		requests = 1000
	}

	res := &Result{
		ID: "ext-serving", Title: "HTTP serving throughput/latency by client concurrency (extension; dynamic batching over localhost)",
		Header: []string{"clients", "requests", "ok", "rejected", "img/s", "p50", "p90", "p99", "max"},
	}
	for _, clients := range []int{1, 4, 16} {
		lr, err := server.RunLoad(context.Background(), server.LoadConfig{
			URL: base, Images: images, Concurrency: clients, Requests: requests,
		})
		if err != nil {
			return nil, err
		}
		if lr.Failed > 0 {
			return nil, fmt.Errorf("ext-serving: %d requests failed at concurrency %d", lr.Failed, clients)
		}
		res.AddRow(fmt.Sprint(clients), fmt.Sprint(lr.Requests), fmt.Sprint(lr.OK),
			fmt.Sprint(lr.Rejected), fmt.Sprintf("%.1f", lr.ImagesPerSec),
			lr.P50.Round(10*time.Microsecond).String(), lr.P90.Round(10*time.Microsecond).String(),
			lr.P99.Round(10*time.Microsecond).String(), lr.Max.Round(10*time.Microsecond).String())
	}
	res.AddNote("4-member %s system served at %s; batch window 2ms, max batch 32", b.Name, base)
	res.AddNote("batcher: %d batches over %d images (%d coalesced, largest-bucket histogram in /metrics); decisions: %d reliable / %d escalated",
		metrics.Batches.Value(), metrics.Images.Value(), metrics.Coalesced.Value(),
		metrics.Reliable.Value(), metrics.Escalated.Value())
	return res, nil
}
