package experiments

import (
	"repro/internal/core"
	"repro/internal/model"
)

func init() {
	register("ext-oracle", ExtOracleBound)
	register("ext-budget", ExtFPBudget)
}

// ExtOracleBound is an extension beyond the paper's figures: it computes
// the §III-F oracle upper bound — an engine that activates the single
// correct member whenever one exists — and contrasts it with the realized
// 4_PGMR design point. The gap shows how much of the FP mass is reachable
// by member diversity at all versus how much the realizable decision engine
// captures.
func ExtOracleBound(ctx *Context) (*Result, error) {
	res := &Result{
		ID: "ext-oracle", Title: "Oracle decision-engine upper bound (extension; paper §III-F)",
		Header: []string{"benchmark", "ORG FP", "oracle FP", "4_PGMR FP", "reachable-FP captured"},
	}
	for _, b := range model.Benchmarks() {
		design, err := ctx.Design(b, 4)
		if err != nil {
			return nil, err
		}
		rec, err := core.BuildRecorded(ctx.Zoo, b, design.Variants, model.SplitTest)
		if err != nil {
			return nil, err
		}
		orgAcc, err := ctx.Zoo.Accuracy(b, model.Variant{}, model.SplitTest)
		if err != nil {
			return nil, err
		}
		orgFP := 1 - orgAcc
		oracle := rec.OracleRates()
		fe, err := evalAtFloor(ctx, b, design.Variants)
		if err != nil {
			return nil, err
		}
		reachable := orgFP - oracle.FP // FP mass removable by diversity
		captured := "-"
		if reachable > 1e-9 {
			captured = pct((orgFP - fe.Test.FP) / reachable)
		}
		res.AddRow(b.Display, pct(orgFP), pct(oracle.FP), pct(fe.Test.FP), captured)
	}
	res.AddNote("oracle activates the one correct member per input when it exists; no realizable engine reaches it (paper §III-F)")
	return res, nil
}

// ExtFPBudget is an extension: the decision engine profiled under the
// paper's alternative user demand — an explicit FP budget (§III-E) — on the
// DenseNet40 benchmark, showing the TP retained at each budget.
func ExtFPBudget(ctx *Context) (*Result, error) {
	b, err := model.ByName("densenet40")
	if err != nil {
		return nil, err
	}
	design, err := ctx.Design(b, 4)
	if err != nil {
		return nil, err
	}
	valRec, err := core.BuildRecorded(ctx.Zoo, b, design.Variants, model.SplitVal)
	if err != nil {
		return nil, err
	}
	testRec, err := core.BuildRecorded(ctx.Zoo, b, design.Variants, model.SplitTest)
	if err != nil {
		return nil, err
	}
	orgAcc, err := ctx.Zoo.Accuracy(b, model.Variant{}, model.SplitTest)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID: "ext-budget", Title: "FP-budget threshold selection (extension; paper §III-E user demands, DenseNet40)",
		Header: []string{"FP budget", "thresholds", "test TP", "test FP", "escalated"},
	}
	for _, budget := range []float64{0.05, 0.02, 0.01, 0.005, 0.002} {
		th, _, ok := valRec.SelectByFPBudget(budget)
		if !ok {
			res.AddRow(pct(budget), "unsatisfiable", "-", "-", "-")
			continue
		}
		rates := testRec.Evaluate(th)
		res.AddRow(pct(budget), th.String(), pct(rates.TP), pct(rates.FP), pct(rates.TN+rates.FN))
	}
	res.AddNote("baseline ORG accuracy %s; budgets selected on val, reported on test", pct(orgAcc))
	res.AddNote("tighter budgets trade answered volume (TP) for fewer undetected mispredictions — the medical-triage operating mode")
	return res, nil
}
