package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/tensor"
)

func init() {
	register("ext-abft", ExtAbft)
}

// abftFlipTarget returns the per-backend campaign size: a tiny smoke
// campaign by default (CI budget), the full ≥1000-flip campaign under
// PGMR_FULL=1 (matching BENCH_abft.json, which always runs at full scale).
func abftFlipTarget() int {
	if os.Getenv("PGMR_FULL") == "1" {
		return 1000
	}
	return 100
}

// ExtAbft is an extension beyond the paper's figures: it closes the loop
// between the ABFT checksummed kernels (DESIGN.md §10) and the fault
// injector. For each numeric backend it builds the convnet system, measures
// the clean-run overhead of verified mode on ClassifyBatch at B=32, then
// runs a live-buffer bit-flip campaign (faults.KernelInjector: high-order
// mantissa/exponent flips landing in kernel output buffers) and reports the
// detection coverage, the correction outcome, and the fraction of campaign
// rounds whose decisions re-execution restored to the fault-free result.
func ExtAbft(ctx *Context) (*Result, error) {
	b, err := model.ByName("convnet")
	if err != nil {
		return nil, err
	}
	design, err := ctx.Design(b, 4)
	if err != nil {
		return nil, err
	}
	ds, err := ctx.Zoo.Dataset(b.DatasetName)
	if err != nil {
		return nil, err
	}
	target := abftFlipTarget()

	res := &Result{
		ID: "ext-abft", Title: "ABFT checksummed kernels: overhead and injection coverage (extension; DESIGN.md §10)",
		Header: []string{"backend", "overhead@B=32", "flips", "detected", "corrected", "uncorrectable", "fault-free decisions"},
	}
	for _, backend := range []core.Backend{core.BackendF64, core.BackendF32, core.BackendInt8} {
		sys, err := core.BuildSystem(ctx.Zoo, b, design.Variants)
		if err != nil {
			return nil, err
		}
		sys.Workers = 1
		if backend != core.BackendF64 {
			for i := range sys.Members {
				sys.Members[i].Backend = backend
			}
			calib := make([]*tensor.T, 0, 16)
			for i := 0; i < len(ds.Val) && i < 16; i++ {
				calib = append(calib, ds.Val[i].X)
			}
			if err := sys.PrepareBackends(calib); err != nil {
				return nil, fmt.Errorf("ext-abft: %w", err)
			}
		}
		xs := make([]*tensor.T, 32)
		for i := range xs {
			xs[i] = ds.Test[i].X
		}

		// Clean-run overhead: best-of-three unverified vs verified walls,
		// after one warmup pass each.
		clean := sys.ClassifyBatch(xs)
		base := bestOf(3, func() { sys.ClassifyBatch(xs) })
		sys.PrepareVerified(true)
		verifiedD := sys.ClassifyBatch(xs)
		for i := range clean {
			if clean[i].Label != verifiedD[i].Label || clean[i].Reliable != verifiedD[i].Reliable {
				return nil, fmt.Errorf("ext-abft: %s verified clean decision diverges on frame %d", backend, i)
			}
		}
		wall := bestOf(3, func() { sys.ClassifyBatch(xs) })
		overhead := wall.Seconds()/base.Seconds() - 1

		// Injection campaign: every verified kernel call suffers one flip
		// until the target count is reached; a round's decisions count as
		// fault-free when re-execution restored every label and verdict.
		before := sys.AbftCounts()
		ki := faults.NewKernelInjector(131+int64(backend), 1)
		ki.Install()
		rounds, faultFree := 0, 0
		for ki.Injected() < target {
			got := sys.ClassifyBatch(xs)
			rounds++
			ok := true
			for i := range got {
				if got[i].Label != clean[i].Label || got[i].Reliable != clean[i].Reliable {
					ok = false
					break
				}
			}
			if ok {
				faultFree++
			}
		}
		ki.Remove()
		after := sys.AbftCounts()
		inj := uint64(ki.Injected())
		detected := after.Detected - before.Detected
		corrected := after.Corrected - before.Corrected
		uncorrectable := after.Uncorrectable - before.Uncorrectable

		res.AddRow(backend.String(),
			pct(overhead),
			fmt.Sprint(inj),
			fmt.Sprintf("%d (%s)", detected, pct(float64(detected)/float64(inj))),
			fmt.Sprint(corrected),
			fmt.Sprint(uncorrectable),
			fmt.Sprintf("%d/%d rounds", faultFree, rounds))
	}
	res.AddNote("4-member convnet system, staged activation, B=32; flips land in live kernel output buffers (high-order mantissa/exponent bits)")
	res.AddNote("campaign size %d flips/backend (PGMR_FULL=1 for the 1000-flip campaign); BENCH_abft.json carries the pinned full-scale numbers", target)
	return res, nil
}

// bestOf times fn n times and returns the fastest wall (first pass is the
// warmup and never wins).
func bestOf(n int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i <= n; i++ {
		start := time.Now()
		fn()
		if e := time.Since(start); i > 0 && e < best {
			best = e
		}
	}
	return best
}
