package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"runtime"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/tensor"
)

func init() {
	register("ext-cluster", ExtCluster)
}

// countingBackend wraps one node's engine and records every image key that
// reaches it, so the experiment can verify the routing exclusivity claim:
// with every peer up, each unique image enters exactly one node's engine —
// its consistent-hash owner — no matter which node the request arrived at.
type countingBackend struct {
	sys *core.System
	fp  cache.Fingerprint

	mu   sync.Mutex
	seen map[cache.Key]struct{}
}

func (cb *countingBackend) ClassifyBatchContext(ctx context.Context, xs []*tensor.T) ([]core.Decision, error) {
	cb.mu.Lock()
	for _, x := range xs {
		cb.seen[cache.ImageKey(cb.fp, x.Shape, x.Data)] = struct{}{}
	}
	cb.mu.Unlock()
	return cb.sys.ClassifyBatchContext(ctx, xs)
}

// ExtCluster measures the scale-out serving cluster (DESIGN.md §13) against
// single-node serving: one process per node, loopback TCP between them,
// each node running the full cached MR system. Every node streams the same
// Zipf workload concurrently — the closed-loop aggregate — twice: a cold
// pass that populates the partitioned cache and a warm pass served from it.
// The runner itself enforces the acceptance properties: every decision of
// both passes and both cluster sizes is DeepEqual-identical to a
// single-process baseline, each unique image is computed by exactly one
// node (its ring owner), and no request degrades to fallback while every
// peer is up. The measured points land in BENCH_cluster.json.
func ExtCluster(ctx *Context) (*Result, error) {
	b, err := model.ByName("convnet")
	if err != nil {
		return nil, err
	}
	design, err := ctx.Design(b, 4)
	if err != nil {
		return nil, err
	}
	ds, err := ctx.Zoo.Dataset(b.DatasetName)
	if err != nil {
		return nil, err
	}
	pool := len(ds.Test)
	if pool > 64 {
		pool = 64
	}
	if pool < 2 {
		return nil, fmt.Errorf("ext-cluster: dataset too small (%d test images)", pool)
	}
	s := ctx.ZipfS
	if s <= 1 {
		s = 1.1
	}
	const batch = 32
	const batches = 24
	rng := rand.New(rand.NewSource(2))
	zipf := rand.NewZipf(rng, s, 1, uint64(pool-1))
	frames := make([]*tensor.T, batch*batches)
	for i := range frames {
		frames[i] = ds.Test[zipf.Uint64()].X
	}

	cacheMB := ctx.CacheMB
	if cacheMB <= 0 {
		cacheMB = 64
	}
	const salt = "bits=0"

	mkSys := func() (*core.System, error) {
		sys, err := core.BuildSystem(ctx.Zoo, b, design.Variants)
		if err != nil {
			return nil, err
		}
		sys.Workers = ctx.Workers
		return sys, nil
	}

	// Single-process baseline decisions (uncached) for the identity check.
	baseSys, err := mkSys()
	if err != nil {
		return nil, err
	}
	baseline := make([]core.Decision, 0, len(frames))
	for i := 0; i < len(frames); i += batch {
		baseline = append(baseline, baseSys.ClassifyBatch(frames[i:i+batch])...)
	}

	// runCluster stands up n in-process nodes over loopback, streams the
	// workload from every node concurrently (cold then warm pass), verifies
	// the acceptance properties, and returns the measured point.
	runCluster := func(n int) (perf.ClusterPoint, error) {
		var point perf.ClusterPoint
		point.Nodes = n

		ids := make([]string, n)
		peers := map[string]string{}
		lns := make([]net.Listener, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("n%d", i)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return point, err
			}
			lns[i] = ln
			peers[ids[i]] = ln.Addr().String()
		}
		nodes := make([]*cluster.Node, n)
		backends := make([]*countingBackend, n)
		caches := make([]*core.PredictionCache, n)
		defer func() {
			for _, nd := range nodes {
				if nd != nil {
					nd.Close()
				}
			}
		}()
		for i := range ids {
			sys, err := mkSys()
			if err != nil {
				return point, err
			}
			caches[i] = sys.EnableCache(cache.Config{MaxBytes: int64(cacheMB) << 20}, salt)
			fp := sys.ConfigFingerprint(salt)
			backends[i] = &countingBackend{sys: sys, fp: fp, seen: map[cache.Key]struct{}{}}
			nd, err := cluster.New(cluster.Config{
				NodeID:      ids[i],
				Peers:       peers,
				Backend:     backends[i],
				Fingerprint: fp,
			})
			if err != nil {
				return point, err
			}
			nodes[i] = nd
			go nd.Serve(lns[i])
		}

		// pass streams the full workload from every node concurrently and
		// verifies each returned decision against the baseline.
		pass := func() (time.Duration, error) {
			start := time.Now()
			errc := make(chan error, n)
			var wg sync.WaitGroup
			for _, nd := range nodes {
				wg.Add(1)
				go func(nd *cluster.Node) {
					defer wg.Done()
					for i := 0; i < len(frames); i += batch {
						got, err := nd.ClassifyBatch(context.Background(), frames[i:i+batch])
						if err != nil {
							errc <- fmt.Errorf("ext-cluster: node %s: %w", nd.NodeID(), err)
							return
						}
						for j, d := range got {
							if !reflect.DeepEqual(d, baseline[i+j]) {
								errc <- fmt.Errorf("ext-cluster: node %s frame %d diverges from single-process baseline", nd.NodeID(), i+j)
								return
							}
						}
					}
				}(nd)
			}
			wg.Wait()
			select {
			case err := <-errc:
				return 0, err
			default:
			}
			return time.Since(start), nil
		}

		coldT, err := pass()
		if err != nil {
			return point, err
		}
		// Warm-pass hit ratio is measured as a delta over the cold pass.
		prevHits, prevMisses := uint64(0), uint64(0)
		for _, pc := range caches {
			st := pc.Stats()
			prevHits += st.Hits
			prevMisses += st.Misses
		}
		warmT, err := pass()
		if err != nil {
			return point, err
		}
		hits, misses := uint64(0), uint64(0)
		for _, pc := range caches {
			st := pc.Stats()
			hits += st.Hits
			misses += st.Misses
		}
		hits -= prevHits
		misses -= prevMisses

		// Routing exclusivity: no image key may have entered two engines.
		unique := map[cache.Key]int{}
		for _, be := range backends {
			be.mu.Lock()
			for k := range be.seen {
				unique[k]++
			}
			be.mu.Unlock()
		}
		for k, c := range unique {
			if c > 1 {
				return point, fmt.Errorf("ext-cluster: image key %s computed on %d nodes", k, c)
			}
		}

		for _, nd := range nodes {
			st := nd.Stats()
			point.Owned += st.Owned
			point.Forwarded += st.Forwarded
			point.Fallback += st.Fallback
			if st.Fallback != 0 || st.ForwardErrors != 0 {
				return point, fmt.Errorf("ext-cluster: node %s degraded with every peer up: %+v", nd.NodeID(), st)
			}
		}
		point.Images = n * len(frames)
		point.ColdImgPerSec = float64(point.Images) / coldT.Seconds()
		point.WarmImgPerSec = float64(point.Images) / warmT.Seconds()
		if hits+misses > 0 {
			point.HitRatio = float64(hits) / float64(hits+misses)
		}
		point.UniqueComputes = len(unique)
		point.Identical = true
		return point, nil
	}

	points := make([]perf.ClusterPoint, 0, 2)
	for _, n := range []int{1, 3} {
		p, err := runCluster(n)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}

	report := perf.ClusterReport{
		Benchmark:  b.Name,
		Members:    4,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		PoolImages: pool,
		ZipfS:      s,
		Batch:      batch,
		Frames:     len(frames),
		Points:     points,
	}
	if err := perf.WriteClusterReport(perf.ClusterReportPath(), report); err != nil {
		return nil, fmt.Errorf("ext-cluster: writing report: %w", err)
	}

	res := &Result{
		ID: "ext-cluster", Title: "Scale-out cluster serving: 1 vs 3 consistent-hash routed nodes (extension)",
		Header: []string{"nodes", "images", "cold img/s", "warm img/s", "hit ratio", "owned", "forwarded", "unique keys"},
	}
	for _, p := range points {
		res.AddRow(fmt.Sprint(p.Nodes), fmt.Sprint(p.Images),
			fmt.Sprintf("%.1f", p.ColdImgPerSec), fmt.Sprintf("%.1f", p.WarmImgPerSec),
			fmt.Sprintf("%.3f", p.HitRatio),
			fmt.Sprint(p.Owned), fmt.Sprint(p.Forwarded), fmt.Sprint(p.UniqueComputes))
	}
	res.AddNote("4-member %s systems, Zipf(s=%.2f) over a %d-image pool, batch=%d; every node streams the full %d-frame workload concurrently, twice (cold then warm)",
		b.Name, s, pool, batch, len(frames))
	res.AddNote("every decision of both passes verified DeepEqual-identical to the single-process baseline; each unique image computed on exactly one node; zero fallbacks with all peers up")
	res.AddNote("report written to %s", perf.ClusterReportPath())
	return res, nil
}
