package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/model"
)

func init() {
	register("fig5", Fig5MRDegree)
	register("fig7", Fig7Agreement)
}

// fig5Degrees returns the redundancy degrees swept by Fig. 5, scaled by
// profile (the paper sweeps 2–30).
func fig5Degrees(p dataset.Profile) []int {
	if p == dataset.Full {
		return []int{2, 4, 6, 8, 10, 14, 18, 22, 26, 30}
	}
	return []int{2, 4, 6, 8, 10, 12, 14}
}

// Fig5MRDegree reproduces Fig. 5: traditional MR on ConvNet/CIFAR-10 with
// random-init replicas, under three decision policies — majority vote,
// all-identical, and all-identical plus a 75% confidence threshold —
// reporting FP and TP versus redundancy degree.
func Fig5MRDegree(ctx *Context) (*Result, error) {
	b, err := model.ByName("convnet")
	if err != nil {
		return nil, err
	}
	degrees := fig5Degrees(ctx.Profile())
	maxN := degrees[len(degrees)-1]
	rec, err := core.BuildRecorded(ctx.Zoo, b, InitVariants(maxN), model.SplitTest)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID: "fig5", Title: "Traditional MR vs redundancy degree (paper Fig. 5, ConvNet/CIFAR10)",
		Header: []string{"degree", "majority FP", "majority TP", "all-ident FP", "all-ident TP", "all-ident+conf75 FP", "all-ident+conf75 TP"},
	}
	single := rec.Subset([]int{0}).Evaluate(core.Thresholds{Conf: 0, Freq: 1})
	res.AddNote("single CNN baseline: FP %s, TP %s", pct(single.FP), pct(single.TP))

	idx := make([]int, 0, maxN)
	for _, d := range degrees {
		idx = idx[:0]
		for i := 0; i < d; i++ {
			idx = append(idx, i)
		}
		sub := rec.Subset(idx)
		maj := sub.Evaluate(core.Majority(d))
		all := sub.Evaluate(core.AllIdentical(d))
		allConf := sub.Evaluate(core.Thresholds{Conf: 0.75, Freq: d})
		res.AddRow(fmt.Sprint(d),
			pct(maj.FP), pct(maj.TP),
			pct(all.FP), pct(all.TP),
			pct(allConf.FP), pct(allConf.TP))
	}
	res.AddNote("paper finding: majority-vote FP flattens with degree; all-identical reaches ~1%% FP (and ~0.2%% with Thr_Conf) but collapses TP")
	return res, nil
}

// Fig7Agreement reproduces Fig. 7: the histogram of prediction agreements in
// a 4-CNN random-init system on LeNet-5, ConvNet and AlexNet, with no
// confidence threshold.
func Fig7Agreement(ctx *Context) (*Result, error) {
	res := &Result{
		ID: "fig7", Title: "Prediction-agreement histogram, 4 CNNs (paper Fig. 7)",
		Header: []string{"benchmark", "agree=1", "agree=2", "agree=3", "agree=4", ">=50% consensus"},
	}
	for _, name := range []string{"lenet5", "convnet", "alexnet"} {
		b, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		rec, err := core.BuildRecorded(ctx.Zoo, b, InitVariants(4), model.SplitTest)
		if err != nil {
			return nil, err
		}
		h := metrics.AgreementHistogram(rec.MemberPreds())
		res.AddRow(b.Display, pct(h[1]), pct(h[2]), pct(h[3]), pct(h[4]), pct(h[3]+h[4]))
	}
	res.AddNote("paper finding: in >50%% of inputs the CNNs agree, so activating a subset suffices (motivates RADE)")
	return res, nil
}
