package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tensor"
)

func init() {
	register("ext-caching", ExtCaching)
}

// ExtCaching is an extension beyond the paper's figures: it measures the
// content-addressed prediction cache on a duplicate-heavy workload. Real
// deployments of the paper's motivating applications see repeated inputs —
// static scenes between video frames, retried requests, popular images — so
// a Zipf-skewed draw from a fixed pool models the arrival stream. The
// experiment reports hit ratio against end-to-end ClassifyBatch throughput
// for cache-off, a cold cached pass, and a warm cached pass, and verifies
// on every frame that cached decisions match uncached ones (caching must
// never change what the ensemble decides; §II's reliability contract).
func ExtCaching(ctx *Context) (*Result, error) {
	b, err := model.ByName("convnet")
	if err != nil {
		return nil, err
	}
	design, err := ctx.Design(b, 4)
	if err != nil {
		return nil, err
	}
	sys, err := core.BuildSystem(ctx.Zoo, b, design.Variants)
	if err != nil {
		return nil, err
	}
	sys.Workers = ctx.Workers

	ds, err := ctx.Zoo.Dataset(b.DatasetName)
	if err != nil {
		return nil, err
	}
	pool := len(ds.Test)
	if pool > 64 {
		pool = 64
	}
	if pool < 2 {
		return nil, fmt.Errorf("ext-caching: dataset too small (%d test images)", pool)
	}
	s := ctx.ZipfS
	if s <= 1 {
		s = 1.1
	}
	const batch = 32
	const batches = 16
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, s, 1, uint64(pool-1))
	frames := make([]*tensor.T, batch*batches)
	distinct := map[uint64]bool{}
	for i := range frames {
		k := zipf.Uint64()
		distinct[k] = true
		frames[i] = ds.Test[k].X
	}

	classifyAll := func() ([]core.Decision, time.Duration) {
		out := make([]core.Decision, 0, len(frames))
		start := time.Now()
		for i := 0; i < len(frames); i += batch {
			out = append(out, sys.ClassifyBatch(frames[i:i+batch])...)
		}
		return out, time.Since(start)
	}

	baseline, baseT := classifyAll()

	cacheMB := ctx.CacheMB
	if cacheMB <= 0 {
		cacheMB = 64
	}
	pc := sys.EnableCache(cache.Config{MaxBytes: int64(cacheMB) << 20, TTL: ctx.CacheTTL}, "bits=0")
	coldD, coldT := classifyAll()
	coldStats := pc.Stats()
	warmD, warmT := classifyAll()
	warmStats := pc.Stats()
	sys.Cache = nil

	for i := range baseline {
		for name, d := range map[string]core.Decision{"cold": coldD[i], "warm": warmD[i]} {
			if d.Label != baseline[i].Label || d.Reliable != baseline[i].Reliable ||
				d.Activated != baseline[i].Activated {
				return nil, fmt.Errorf("ext-caching: %s cached decision diverges on frame %d", name, i)
			}
		}
	}

	n := len(frames)
	res := &Result{
		ID: "ext-caching", Title: "Prediction-cache hit ratio vs throughput on a Zipf duplicate workload (extension)",
		Header: []string{"configuration", "frames", "hit ratio", "wall", "img/sec", "speedup"},
	}
	hitRatio := func(hits, misses uint64) string {
		if hits+misses == 0 {
			return "-"
		}
		return pct(float64(hits) / float64(hits+misses))
	}
	row := func(name, hits string, wall time.Duration) {
		res.AddRow(name, fmt.Sprint(n), hits,
			wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", float64(n)/wall.Seconds()),
			fmt.Sprintf("%.2fx", baseT.Seconds()/wall.Seconds()))
	}
	row("cache off", "-", baseT)
	row("cache on (cold)", hitRatio(coldStats.Hits, coldStats.Misses), coldT)
	row("cache on (warm)", hitRatio(warmStats.Hits-coldStats.Hits, warmStats.Misses-coldStats.Misses), warmT)
	res.AddNote("4-member %s system, Zipf(s=%.2f) over a %d-image pool (%d distinct drawn), batch=%d, cache %d MiB; decisions verified identical cached vs uncached",
		b.Name, s, pool, len(distinct), batch, cacheMB)
	res.AddNote("cache: %d entries, %d coalesced, %d B resident after the warm pass", warmStats.Entries, warmStats.Coalesced, warmStats.Bytes)
	res.CacheTiers = cacheTierStats(warmStats)
	return res, nil
}
