package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	polygraph "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/policy"
	"repro/internal/server"
	"repro/internal/server/telemetry"
	"repro/internal/tensor"
)

func init() {
	register("ext-slo", ExtSLO)
}

// ExtSLO is the SLO-driven adaptive cascade sweep (extension; DESIGN.md
// §12): it stands up the serving subsystem twice over the same trained
// members — once with the static configuration, once with the runtime
// policy controller armed at Context.SLO — and drives both with an
// open-loop offered-load sweep. The claim under test is the controller's
// contract: at low load its decisions agree with the static full-precision
// cascade (the controller sits on the static tier, ≥99% agreement), and at
// offered loads where the static configuration blows through the p99
// budget, the controller degrades the cascade (cheaper backends, fused
// committee, shallower stages, wider batches) and meets it. The measured
// Pareto lands in BENCH_slo.json (perf.SLOReportPath).
func ExtSLO(ctx *Context) (*Result, error) {
	if ctx.SLO <= 0 {
		return nil, fmt.Errorf("ext-slo: Context.SLO must be positive, got %v", ctx.SLO)
	}
	b, err := model.ByName("convnet")
	if err != nil {
		return nil, err
	}
	design, err := ctx.Design(b, 4)
	if err != nil {
		return nil, err
	}
	ds, err := ctx.Zoo.Dataset(b.DatasetName)
	if err != nil {
		return nil, err
	}

	// The serving batch shape both modes share; the controller adapts
	// around it, the static server is stuck with it. Requests carry 8
	// images each so the cascade — not per-request HTTP/JSON overhead —
	// is what saturates first; on a small machine single-image requests
	// bottleneck on the transport, which no cascade tier can fix.
	const (
		batchWindow  = 2 * time.Millisecond
		maxBatch     = 32
		queueDepth   = 512
		imagesPerReq = 8
	)

	build := func() (*core.System, error) {
		sys, err := core.BuildSystem(ctx.Zoo, b, design.Variants)
		if err != nil {
			return nil, err
		}
		sys.Workers = ctx.Workers
		return sys, nil
	}
	sysStatic, err := build()
	if err != nil {
		return nil, err
	}
	sysAdapt, err := build()
	if err != nil {
		return nil, err
	}
	calib := make([]*tensor.T, 0, 16)
	for i := 0; i < len(ds.Val) && i < 16; i++ {
		calib = append(calib, ds.Val[i].X)
	}
	if err := sysAdapt.PrepareAdaptive(calib); err != nil {
		return nil, err
	}
	ctl, err := policy.New(policy.Config{
		SLO:          ctx.SLO,
		Members:      len(sysAdapt.Members),
		Freq:         sysAdapt.Th.Freq,
		StageBatch:   sysAdapt.Batch,
		BaseEarly:    core.BackendF64,
		BaseLate:     core.BackendF64,
		BaseWindow:   batchWindow,
		BaseMaxBatch: maxBatch,
	})
	if err != nil {
		return nil, err
	}
	sysAdapt.Policy = ctl

	// Image pool from the held-out test split.
	n := len(ds.Test)
	if n > 64 {
		n = 64
	}
	images := make([]polygraph.Image, n)
	xs := make([]*tensor.T, n)
	for i := 0; i < n; i++ {
		s := ds.Test[i]
		images[i] = polygraph.Image{
			Channels: s.X.Shape[0], Height: s.X.Shape[1], Width: s.X.Shape[2],
			Pixels: s.X.Data,
		}
		xs[i] = s.X
	}

	serve := func(sys *core.System, pol server.Policy) (string, func(), error) {
		srv, err := server.New(server.Config{
			Backend:     servingBackend{sys: sys, inShape: ds.InShape},
			BatchWindow: batchWindow,
			MaxBatch:    maxBatch,
			QueueDepth:  queueDepth,
			Metrics:     telemetry.NewMetrics(len(sys.Members)),
			Policy:      pol,
		})
		if err != nil {
			return "", nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		stop := func() {
			dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Drain(dctx)
			_ = hs.Shutdown(dctx)
		}
		return "http://" + ln.Addr().String(), stop, nil
	}

	baseStatic, stopStatic, err := serve(sysStatic, nil)
	if err != nil {
		return nil, err
	}
	defer stopStatic()
	baseAdapt, stopAdapt, err := serve(sysAdapt, ctl)
	if err != nil {
		return nil, err
	}
	defer stopAdapt()

	// Closed-loop capacity probe of the static server: the sweep's load
	// points are placed relative to this, so the experiment scales with
	// the machine it runs on.
	probe, err := server.RunLoad(context.Background(), server.LoadConfig{
		URL: baseStatic, Images: images, Concurrency: 8, Requests: 120,
		ImagesPerRequest: imagesPerReq,
	})
	if err != nil {
		return nil, err
	}
	capStatic := probe.ImagesPerSec
	if capStatic < 20 {
		capStatic = 20
	}

	window := 1500 * time.Millisecond
	maxRequests := 1200
	if ctx.Profile() == dataset.Full {
		window = 3 * time.Second
		maxRequests = 5000
	}
	// Offered loads are in images/s; requests carry imagesPerReq images.
	runPoint := func(base string, imgRate float64) (*server.LoadResult, float64, int, error) {
		reqRate := imgRate / imagesPerReq
		reqs := int(reqRate * window.Seconds())
		if reqs < 40 {
			reqs = 40
		}
		if reqs > maxRequests {
			reqs = maxRequests
		}
		// Judge the steady state: the first half-second of offered load is
		// warmup, covering the controller's step-down transient (and, on the
		// static side, connection setup) — both modes get the same cut.
		warmup := int(reqRate / 2)
		if warmup > reqs/2 {
			warmup = reqs / 2
		}
		lr, err := server.RunLoad(context.Background(), server.LoadConfig{
			URL: base, Images: images, Concurrency: 32, Requests: reqs, Rate: reqRate,
			ImagesPerRequest: imagesPerReq, Warmup: warmup,
		})
		return lr, reqRate, warmup, err
	}

	res := &Result{
		ID: "ext-slo", Title: fmt.Sprintf("SLO-driven adaptive cascade vs static serving under open-loop load (extension; budget %v)", ctx.SLO),
		Header: []string{"load", "mode", "img/s", "ok", "rej", "fail", "p50", "p99", "p99<=SLO", "tier"},
	}
	report := perf.SLOReport{
		Benchmark: b.Name, Members: len(sysAdapt.Members),
		SLOMs: float64(ctx.SLO.Microseconds()) / 1000, GoMaxProcs: runtime.GOMAXPROCS(0),
		ImagesPerRequest: imagesPerReq,
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	agreement := -1.0

	runModes := func(name string, imgRate float64) error {
		for _, mode := range []string{"static", "slo"} {
			base := baseStatic
			if mode == "slo" {
				base = baseAdapt
			}
			lr, reqRate, warmup, err := runPoint(base, imgRate)
			if err != nil {
				return fmt.Errorf("ext-slo: %s at %s: %w", mode, name, err)
			}
			met := lr.P99 <= ctx.SLO && lr.OK > 0
			pt := perf.SLOPoint{
				Mode: mode, RateReqPerSec: reqRate, RateImgPerSec: imgRate,
				Requests: lr.Requests, OK: lr.OK, Rejected: lr.Rejected, Failed: lr.Failed,
				Warmup: warmup,
				P50Ms:  ms(lr.P50), P90Ms: ms(lr.P90), P99Ms: ms(lr.P99),
				MetBudget: met,
			}
			tierCell := "-"
			if mode == "slo" {
				sn := ctl.Snapshot()
				pt.Tier, pt.TierName = sn.Tier, sn.TierName
				pt.StepDowns, pt.StepUps = sn.StepDowns, sn.StepUps
				pt.BudgetMisses, pt.Escalations = sn.BudgetMisses, sn.Escalations
				tierCell = fmt.Sprintf("%d (%s)", sn.Tier, sn.TierName)
			}
			report.Points = append(report.Points, pt)
			res.AddRow(name, mode, fmt.Sprintf("%.0f", imgRate),
				fmt.Sprint(lr.OK), fmt.Sprint(lr.Rejected), fmt.Sprint(lr.Failed),
				lr.P50.Round(10*time.Microsecond).String(), lr.P99.Round(10*time.Microsecond).String(),
				fmt.Sprint(met), tierCell)
		}
		return nil
	}

	// Low-load point first, then the decision-agreement check — measured
	// while the controller is still in its low-load state (acceptance
	// floor: 99%).
	if err := runModes("low", 0.5*capStatic); err != nil {
		return nil, err
	}
	agreement, err = decisionAgreement(sysStatic, sysAdapt, xs)
	if err != nil {
		return nil, err
	}

	// Probe the degraded ceiling: sustained closed-loop overload drives the
	// controller to its cheapest sustainable tier, and the achieved
	// throughput is what the adaptive server can serve at most. The
	// interesting offered load — where the controller can win — sits
	// between the two capacities; past the degraded ceiling no tier can
	// keep up and both modes saturate.
	floorReqs := int(2 * capStatic * window.Seconds() / imagesPerReq)
	if floorReqs < 200 {
		floorReqs = 200
	}
	if floorReqs > maxRequests {
		floorReqs = maxRequests
	}
	// Two probes: the first drives the controller down (its throughput
	// average is polluted by the adaptation transient and the backlog it
	// drains), the second measures the settled ceiling.
	var capFloor float64
	for i := 0; i < 2; i++ {
		floorProbe, err := server.RunLoad(context.Background(), server.LoadConfig{
			URL: baseAdapt, Images: images, Concurrency: 32, Requests: floorReqs,
			ImagesPerRequest: imagesPerReq,
		})
		if err != nil {
			return nil, err
		}
		capFloor = floorProbe.ImagesPerSec
	}
	if capFloor < capStatic {
		capFloor = capStatic
	}

	// The band point: inside (static capacity, degraded ceiling), with
	// headroom on the degraded side so queueing stays bounded. On a machine
	// whose degraded ceiling is too close to the static capacity there is
	// no band; the point is still measured (and noted) just past static
	// capacity.
	band := 0.8 * capFloor
	if band < 1.1*capStatic {
		band = 1.1 * capStatic
		res.AddNote("no usable capacity band on this machine (degraded ceiling %.0f vs static capacity %.0f img/s)", capFloor, capStatic)
	}
	if err := runModes("band", band); err != nil {
		return nil, err
	}
	bandStatic := report.Points[len(report.Points)-2]
	bandSLO := report.Points[len(report.Points)-1]
	if err := runModes("over", 2*capFloor); err != nil {
		return nil, err
	}

	report.AgreementLowLoad = agreement
	res.AddNote("capacities (closed loop, %d images/request): static %.0f img/s, degraded ceiling %.0f img/s; band point offered %.0f img/s", imagesPerReq, capStatic, capFloor, band)
	res.AddNote("low-load decision agreement with the static cascade: %s (floor 99%%)", pct(agreement))
	if agreement < 0.99 {
		return nil, fmt.Errorf("ext-slo: low-load agreement %.4f below the 0.99 floor", agreement)
	}
	// The headline claim: at the band point the controller meets the p99
	// budget the static configuration misses at the same offered load.
	if !bandStatic.MetBudget && bandSLO.MetBudget {
		res.AddNote("band point: -slo meets the %v p99 budget (%.1fms) that static misses (%.1fms) at %.0f img/s",
			ctx.SLO, bandSLO.P99Ms, bandStatic.P99Ms, band)
	} else {
		return nil, fmt.Errorf("ext-slo: band point did not demonstrate the controller win (static p99 %.1fms met=%v, slo p99 %.1fms met=%v)",
			bandStatic.P99Ms, bandStatic.MetBudget, bandSLO.P99Ms, bandSLO.MetBudget)
	}
	path := perf.SLOReportPath()
	if err := perf.WriteSLOReport(path, report); err != nil {
		res.AddNote("BENCH_slo.json not written (%v); run from the repo root or set PGMR_BENCH_SLO_JSON", err)
	} else {
		res.AddNote("measured Pareto written to %s", path)
	}
	return res, nil
}

// decisionAgreement classifies the pool through both systems and returns
// the fraction of images on which (label, reliable) match. The pool goes
// through in serving-sized chunks: at low load the 2ms batcher coalesces a
// handful of images per batch, and that is the batch shape the agreement
// floor is defined over. One direct mega-batch would instead ask the
// controller a different question — "can you run the whole pool inside one
// budget?" — and it would (correctly) degrade to answer it.
func decisionAgreement(ref, sys *core.System, xs []*tensor.T) (float64, error) {
	const chunk = 8
	same, total := 0, 0
	for lo := 0; lo < len(xs); lo += chunk {
		hi := lo + chunk
		if hi > len(xs) {
			hi = len(xs)
		}
		dref, err := ref.ClassifyBatchContext(context.Background(), xs[lo:hi])
		if err != nil {
			return 0, err
		}
		dsys, err := sys.ClassifyBatchContext(context.Background(), xs[lo:hi])
		if err != nil {
			return 0, err
		}
		for i := range dref {
			total++
			if dref[i].Label == dsys[i].Label && dref[i].Reliable == dsys[i].Reliable {
				same++
			}
		}
	}
	return float64(same) / float64(total), nil
}
