package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// fourQuadrantSamples is a 4-class task (one bright quadrant per class),
// hard enough that a linear model cannot be perfect but trivial for a conv
// net — used for multi-class training integration tests.
func fourQuadrantSamples(rng *rand.Rand, n int) []Sample {
	samples := make([]Sample, n)
	for i := range samples {
		x := tensor.New(1, 8, 8)
		x.FillNormal(rng, 0.2, 0.05)
		label := i % 4
		y0, x0 := (label/2)*4, (label%2)*4
		for y := y0; y < y0+4; y++ {
			for xx := x0; xx < x0+4; xx++ {
				x.Data[y*8+xx] += 0.6
			}
		}
		samples[i] = Sample{X: x, Label: label}
	}
	return samples
}

func TestTrainFourClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	net := MustNetwork([]int{1, 8, 8}, 4,
		NewConv2D(1, 6, 3, 1, 1, rng), NewReLU(), NewMaxPool2D(2),
		NewFlatten(), NewDense(6*4*4, 4, rng),
	)
	samples := fourQuadrantSamples(rng, 160)
	if _, err := Train(net, samples, TrainConfig{Epochs: 5, BatchSize: 8, LR: 0.02, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, samples); acc < 0.95 {
		t.Errorf("4-class accuracy %.3f, want >= 0.95", acc)
	}
}

func TestTrainWithDropoutStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	net := MustNetwork([]int{1, 8, 8}, 4,
		NewConv2D(1, 6, 3, 1, 1, rng), NewReLU(), NewMaxPool2D(2),
		NewFlatten(), NewDropout(0.2, 5), NewDense(6*4*4, 4, rng),
	)
	samples := fourQuadrantSamples(rng, 160)
	if _, err := Train(net, samples, TrainConfig{Epochs: 6, BatchSize: 8, LR: 0.02, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, samples); acc < 0.9 {
		t.Errorf("dropout-net accuracy %.3f, want >= 0.9", acc)
	}
}

func TestResidualNetTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	net := MustNetwork([]int{1, 8, 8}, 4,
		NewConv2D(1, 6, 3, 1, 1, rng), NewReLU(),
		NewPlainResidualBlock(6, 6, 1, rng),
		NewPlainResidualBlock(6, 8, 2, rng),
		NewFlatten(), NewDense(8*4*4, 4, rng),
	)
	samples := fourQuadrantSamples(rng, 160)
	if _, err := Train(net, samples, TrainConfig{Epochs: 6, BatchSize: 8, LR: 0.01, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, samples); acc < 0.9 {
		t.Errorf("residual-net accuracy %.3f, want >= 0.9", acc)
	}
}

func TestDenseNetTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	net := MustNetwork([]int{1, 8, 8}, 4,
		NewConv2D(1, 4, 3, 1, 1, rng), NewReLU(),
		NewDenseUnit(4, 4, rng),
		NewDenseUnit(8, 4, rng),
		NewMaxPool2D(2),
		NewFlatten(), NewDense(12*4*4, 4, rng),
	)
	samples := fourQuadrantSamples(rng, 160)
	if _, err := Train(net, samples, TrainConfig{Epochs: 6, BatchSize: 8, LR: 0.01, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(net, samples); acc < 0.9 {
		t.Errorf("dense-net accuracy %.3f, want >= 0.9", acc)
	}
}

// TestLossDecreasesMonotonicallyEnough guards against optimizer regressions:
// over a well-conditioned task, epoch losses should broadly decrease.
func TestLossDecreasesMonotonicallyEnough(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	net := buildTinyNet(rng, 2)
	samples := twoBlobSamples(rng, 100)
	var losses []float64
	cfg := TrainConfig{Epochs: 6, BatchSize: 8, LR: 0.02, Seed: 6,
		Progress: func(_ int, loss float64) { losses = append(losses, loss) }}
	if _, err := Train(net, samples, cfg); err != nil {
		t.Fatal(err)
	}
	if len(losses) != 6 {
		t.Fatalf("got %d epoch losses", len(losses))
	}
	if losses[5] >= losses[0]*0.5 {
		t.Errorf("loss did not halve: %v", losses)
	}
	increases := 0
	for i := 1; i < len(losses); i++ {
		if losses[i] > losses[i-1] {
			increases++
		}
	}
	if increases > 2 {
		t.Errorf("loss increased in %d of 5 transitions: %v", increases, losses)
	}
}

// TestGradientAccumulationEquivalence: two samples accumulated then one
// step must equal the average-gradient step (the batch semantics Train
// relies on).
func TestGradientAccumulationEquivalence(t *testing.T) {
	build := func() *Network {
		r := rand.New(rand.NewSource(106))
		return MustNetwork([]int{4}, 2, NewDense(4, 2, r))
	}
	x1 := tensor.FromSlice([]float64{1, 0, -1, 0.5}, 4)
	x2 := tensor.FromSlice([]float64{0.3, -0.2, 0.8, -1}, 4)

	// Path A: accumulate both gradients, Step(batch=2).
	netA := build()
	for _, s := range []Sample{{X: x1, Label: 0}, {X: x2, Label: 1}} {
		logits := netA.Forward(s.X, true)
		_, g := SoftmaxCrossEntropy(logits, s.Label)
		netA.Backward(g)
	}
	NewSGD(0.1, 0).Step(netA.Params(), 2)

	// Path B: compute the averaged gradient by hand on a twin network.
	netB := build()
	grads := make([]*tensor.T, len(netB.Params()))
	for i, p := range netB.Params() {
		grads[i] = p.Value.ZerosLike()
	}
	for _, s := range []Sample{{X: x1, Label: 0}, {X: x2, Label: 1}} {
		logits := netB.Forward(s.X, true)
		_, g := SoftmaxCrossEntropy(logits, s.Label)
		netB.Backward(g)
	}
	for i, p := range netB.Params() {
		for j := range p.Grad.Data {
			grads[i].Data[j] = p.Grad.Data[j] / 2
		}
		p.Grad.Zero()
	}
	for i, p := range netB.Params() {
		p.Value.Axpy(-0.1, grads[i])
	}

	pa, pb := netA.Params(), netB.Params()
	for i := range pa {
		for j := range pa[i].Value.Data {
			if math.Abs(pa[i].Value.Data[j]-pb[i].Value.Data[j]) > 1e-12 {
				t.Fatalf("batch accumulation differs from mean gradient at param %d[%d]", i, j)
			}
		}
	}
}
