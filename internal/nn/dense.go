package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer mapping a flat [In] vector to [Out].
// Higher-rank inputs are flattened implicitly.
type Dense struct {
	In, Out int

	weight *Param // [Out, In]
	bias   *Param // [Out]

	lastIn    *tensor.T
	lastShape []int
}

var _ Layer = (*Dense)(nil)
var _ Counter = (*Dense)(nil)

// NewDense creates a fully connected layer with Xavier-initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	w := tensor.New(out, in)
	xavierInit(w, in, out, rng)
	return &Dense{
		In: in, Out: out,
		weight: newParam("weight", w, true),
		bias:   newParam("bias", tensor.New(out), false),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d->%d)", d.In, d.Out) }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) ([]int, error) {
	if prodShape(in) != d.In {
		return nil, shapeErr(d.Name(), in, fmt.Sprintf("%d total elements", d.In))
	}
	return []int{d.Out}, nil
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.T, train bool) *tensor.T {
	if x.Len() != d.In {
		panic(fmt.Sprintf("nn: %s: input has %d elements", d.Name(), x.Len()))
	}
	out := tensor.New(d.Out)
	wd := d.weight.Value.Data
	for o := 0; o < d.Out; o++ {
		row := wd[o*d.In : (o+1)*d.In]
		s := d.bias.Value.Data[o]
		for i, v := range x.Data {
			s += row[i] * v
		}
		out.Data[o] = s
	}
	if train {
		d.lastIn = x
		d.lastShape = append([]int(nil), x.Shape...)
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.T) *tensor.T {
	if d.lastIn == nil {
		panic("nn: Dense.Backward called before Forward(train=true)")
	}
	wd := d.weight.Value.Data
	gw := d.weight.Grad.Data
	dx := tensor.New(d.lastShape...)
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		d.bias.Grad.Data[o] += g
		if g == 0 {
			continue
		}
		row := wd[o*d.In : (o+1)*d.In]
		grow := gw[o*d.In : (o+1)*d.In]
		for i, v := range d.lastIn.Data {
			grow[i] += g * v
			dx.Data[i] += g * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.weight, d.bias} }

// Stats implements Counter.
func (d *Dense) Stats(in []int) Stats {
	return Stats{
		MACs:       d.In * d.Out,
		ParamElems: d.weight.Value.Len() + d.bias.Value.Len(),
		ActElems:   d.Out,
	}
}
