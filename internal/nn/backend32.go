package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// This file implements the float32 execution backend (DESIGN.md §9): a
// Network is compiled once into a Net32 — a list of inference-only nodes
// holding float32 copies of the weights — and every subsequent forward pass
// runs entirely in float32 through the batched f32 kernels
// (tensor.Im2ColBatch32 + GemmInto32Fast on the FMA microkernel,
// tensor.WinogradConv3x3F32 on scalar targets, MatMulTransBInto32). The
// batch layout is the image-major [B, elems] backing of nn/batch.go.
//
// Accuracy contract: float32 carries ~7 decimal digits, the zoo logits sit
// in single digits, and softmax is computed in float64 from the f32 logits,
// so probability rows agree with the float64 path to ~1e-6 and top-1
// predictions agree on ≥99% of inputs (locked by the backend property
// tests). The compiled net never mutates shared state and is safe for
// concurrent use; the Arena32 is single-goroutine scratch like Arena.

// node32 is one compiled inference node. src is the image-major f32 batch
// backing; implementations return the output backing and per-image shape,
// drawing temporaries from the arena.
type node32 interface {
	forward(src *tensor.T32, inShape []int, bsz int, a *tensor.Arena32) (*tensor.T32, []int)
}

// Net32 is a compiled reduced-precision inference network. Compile32
// produces a float32 net; CompileInt8 produces one whose Conv2D and Dense
// nodes run the uint8 quantized kernels (see quantize.go). A Net32 shares
// no mutable state with its source Network or other inferences: it may be
// used concurrently as long as each call has its own arena.
type Net32 struct {
	InShape []int
	Classes int
	nodes   []node32
	// Quantized reports whether Conv2D/Dense nodes run the int8 kernels.
	Quantized bool
}

// Compile32 compiles the network into a float32 inference net. Weights are
// converted once; the returned net is independent of later training steps
// on the source network. Networks with an ActivationHook cannot be
// compiled — the hook contract is float64 per-layer mutation, which a
// reduced-precision path cannot honor.
func (n *Network) Compile32() (*Net32, error) {
	if n.ActivationHook != nil {
		return nil, fmt.Errorf("nn: Compile32: network has an ActivationHook; reduced-precision backends cannot honor float64 activation hooks")
	}
	nodes := make([]node32, len(n.Layers))
	for i, l := range n.Layers {
		nodes[i] = compileNode32(l)
	}
	return &Net32{
		InShape:   append([]int(nil), n.InShape...),
		Classes:   n.Classes,
		nodes:     nodes,
		Quantized: false,
	}, nil
}

// compileNode32 builds the f32 node for one layer. Unknown layer types get
// the per-image float64 fallback so Net32 stays total over foreign layers.
func compileNode32(l Layer) node32 {
	switch t := l.(type) {
	case *Conv2D:
		return newConv32(t)
	case *Dense:
		return newDense32(t)
	case *ReLU:
		return relu32{}
	case *LeakyReLU:
		return leaky32{alpha: float32(t.Alpha), exact: t.Alpha >= 0 && t.Alpha <= 1}
	case *Flatten:
		return flatten32{}
	case *Dropout:
		return passthrough32{}
	case *MaxPool2D:
		return maxpool32{k: t.K}
	case *AvgPool2D:
		return avgpool32{}
	case *ChannelNorm:
		return newNorm32(t)
	case *ResidualBlock:
		r := &residual32{
			conv1: newConv32(t.conv1),
			conv2: newConv32(t.conv2),
		}
		if t.norm1 != nil {
			r.norm1 = newNorm32(t.norm1)
		}
		if t.norm2 != nil {
			r.norm2 = newNorm32(t.norm2)
		}
		if t.proj != nil {
			r.proj = newConv32(t.proj)
		}
		return r
	case *DenseUnit:
		return &denseunit32{
			conv: newConv32(t.conv),
			norm: newNorm32(t.norm),
			relu: relu32{},
		}
	default:
		return fallback32{l: l}
	}
}

// InferBatch classifies a minibatch and returns one float64 softmax row per
// input, index-aligned with xs. Inputs are float64 tensors (the engine's
// image type) converted to float32 on entry; softmax runs in float64 over
// the f32 logits. All batch sizes including 1 take the same fused kernels;
// int8 results are bit-identical across batch sizes (the integer GEMM is
// blocking-invariant), f32 results agree within float32 rounding (the FMA
// tile boundaries depend on the batch geometry). A nil arena allocates a
// private one.
func (n *Net32) InferBatch(xs []*tensor.T, a *tensor.Arena32) [][]float64 {
	bsz := len(xs)
	out := make([][]float64, bsz)
	if bsz == 0 {
		return out
	}
	if a == nil {
		a = tensor.NewArena32()
	}
	for _, x := range xs[1:] {
		if !x.SameShape(xs[0]) {
			panic(fmt.Sprintf("nn: Net32.InferBatch: mixed input shapes %v vs %v", x.Shape, xs[0].Shape))
		}
	}
	shape := append([]int(nil), xs[0].Shape...)
	elems := prodShape(shape)
	cur := a.NewRaw(bsz, elems)
	for b, x := range xs {
		row := cur.Data[b*elems : (b+1)*elems]
		for i, v := range x.Data {
			row[i] = float32(v)
		}
	}
	for _, nd := range n.nodes {
		cur, shape = nd.forward(cur, shape, bsz, a)
	}
	cls := prodShape(shape)
	for b := 0; b < bsz; b++ {
		out[b] = softmax64From32(cur.Data[b*cls : (b+1)*cls])
	}
	return out
}

// softmax64From32 computes a float64 softmax row from float32 logits with
// the same max-shift formulation the float64 path uses.
func softmax64From32(logits []float32) []float64 {
	out := make([]float64, len(logits))
	maxv := math.Inf(-1)
	for _, v := range logits {
		if fv := float64(v); fv > maxv {
			maxv = fv
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(float64(v) - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// conv32 is the compiled float32 convolution. With the vector kernels
// enabled it lowers the batch with Im2ColBatch32 and runs the FMA GEMM —
// measured ~4× over the float64 Winograd path at B=32 (BENCH_quant.json);
// on scalar targets Winograd-eligible geometries keep the F(4×4,3×3)
// transform (the multiply-count cut is what wins without SIMD) and the rest
// take the bit-exact f32 GEMM.
type conv32 struct {
	inC, outC, kh, kw, stride, pad int

	weight *tensor.T32 // [OutC, InC*KH*KW]
	bias   []float32   // [OutC]

	// winoU32 is the prepacked Winograd filter transform (DESIGN.md §14),
	// computed once at compile time for 3×3/s1/p1 kernels. nil for other
	// shapes; the forward also honours the tensor.SetPrepack kill-switch.
	winoU32 []float32
}

func newConv32(c *Conv2D) *conv32 {
	bias := make([]float32, c.OutC)
	for i, v := range c.bias.Value.Data {
		bias[i] = float32(v)
	}
	cc := &conv32{
		inC: c.InC, outC: c.OutC, kh: c.KH, kw: c.KW, stride: c.Stride, pad: c.Pad,
		weight: tensor.To32(c.weight.Value),
		bias:   bias,
	}
	if cc.kh == 3 && cc.kw == 3 && cc.stride == 1 && cc.pad == 1 {
		cc.winoU32 = tensor.PackWinoFilter32(cc.weight, cc.outC, cc.inC)
	}
	return cc
}

func (c *conv32) geometry(in []int) tensor.ConvGeom {
	return tensor.ConvGeom{
		InC: c.inC, InH: in[1], InW: in[2],
		KH: c.kh, KW: c.kw, Stride: c.stride, Pad: c.pad,
	}
}

func (c *conv32) forward(src *tensor.T32, inShape []int, bsz int, a *tensor.Arena32) (*tensor.T32, []int) {
	g := c.geometry(inShape)
	oh, ow := g.OutH(), g.OutW()
	ohw := oh * ow
	ckk := c.inC * c.kh * c.kw

	if !tensor.SIMDEnabled() && tensor.WinogradEligible(g) {
		dst := a.NewRaw(bsz, c.outC*ohw)
		if c.winoU32 != nil && tensor.PrepackEnabled() {
			tensor.WinogradConv3x3F32Pre(dst, src, bsz, c.outC, c.winoU32, c.bias, g, a)
		} else {
			tensor.WinogradConv3x3F32(dst, src, bsz, c.outC, c.weight, c.bias, g, a)
		}
		if s := a.Abft(); s != nil {
			s.Record(tensor.VerifyWinogradConv32(dst, src, bsz, c.outC, c.weight, c.bias, g))
		}
		return dst, []int{c.outC, oh, ow}
	}

	cm := a.NewRaw(c.outC, bsz*ohw)
	if tensor.PrepackEnabled() && a.Abft() == nil && bsz*ohw >= tensor.ImplicitConvMinN {
		// Implicit GEMM: the im2col operand is generated block-by-block
		// inside the panel loop, never materialized (DESIGN.md §14).
		tensor.ConvGemmIm2Col32(cm, c.weight, src.Data[:bsz*c.inC*g.InH*g.InW], bsz, g)
	} else {
		// Verified mode needs the materialized cols for the checksum pass.
		cols := a.NewRaw(ckk, bsz*ohw)
		tensor.Im2ColBatch32(cols, src, bsz, g)
		tensor.GemmInto32Fast(cm, c.weight, cols)
		if s := a.Abft(); s != nil {
			s.Record(tensor.VerifyGemm32(cm, c.weight, cols))
		}
	}

	dst := a.NewRaw(bsz, c.outC*ohw)
	for oc := 0; oc < c.outC; oc++ {
		crow := cm.Data[oc*bsz*ohw : (oc+1)*bsz*ohw]
		for b := 0; b < bsz; b++ {
			drow := dst.Data[b*c.outC*ohw+oc*ohw : b*c.outC*ohw+(oc+1)*ohw]
			tensor.AddBiasRow(drow, crow[b*ohw:(b+1)*ohw], c.bias[oc])
		}
	}
	return dst, []int{c.outC, oh, ow}
}

// dense32 is the compiled float32 fully connected layer: one
// [B,In] × [In,Out]ᵀ matmul plus a bias row broadcast.
type dense32 struct {
	in, out int
	weight  *tensor.T32 // [Out, In]
	bias    []float32
}

func newDense32(d *Dense) *dense32 {
	bias := make([]float32, d.Out)
	for i, v := range d.bias.Value.Data {
		bias[i] = float32(v)
	}
	return &dense32{in: d.In, out: d.Out, weight: tensor.To32(d.weight.Value), bias: bias}
}

func (d *dense32) forward(src *tensor.T32, inShape []int, bsz int, a *tensor.Arena32) (*tensor.T32, []int) {
	if prodShape(inShape) != d.in {
		panic(fmt.Sprintf("nn: dense32: batched input of %d elements, want %d", prodShape(inShape), d.in))
	}
	x := src.Reshape(bsz, d.in)
	dst := a.NewRaw(bsz, d.out)
	tensor.MatMulTransBInto32(dst, x, d.weight)
	if s := a.Abft(); s != nil {
		s.Record(tensor.VerifyMatMulTransB32(dst, x, d.weight))
	}
	for b := 0; b < bsz; b++ {
		row := dst.Data[b*d.out : (b+1)*d.out]
		for o, bv := range d.bias {
			row[o] += bv
		}
	}
	return dst, []int{d.out}
}

// relu32 rectifies the whole batch buffer branchlessly.
type relu32 struct{}

func (relu32) forward(src *tensor.T32, inShape []int, bsz int, a *tensor.Arena32) (*tensor.T32, []int) {
	dst := a.NewRaw(bsz, prodShape(inShape))
	dd := dst.Data
	for i, v := range src.Data {
		dd[i] = max(v, 0)
	}
	return dst, inShape
}

// leaky32 mirrors LeakyReLU's batched kernel: max(v, α·v) for 0 ≤ α ≤ 1,
// the literal comparison otherwise.
type leaky32 struct {
	alpha float32
	exact bool
}

func (l leaky32) forward(src *tensor.T32, inShape []int, bsz int, a *tensor.Arena32) (*tensor.T32, []int) {
	dst := a.NewRaw(bsz, prodShape(inShape))
	dd := dst.Data
	if l.exact {
		for i, v := range src.Data {
			dd[i] = max(v, l.alpha*v)
		}
		return dst, inShape
	}
	for i, v := range src.Data {
		if v > 0 {
			dd[i] = v
		} else {
			dd[i] = l.alpha * v
		}
	}
	return dst, inShape
}

// flatten32 is a pure shape change.
type flatten32 struct{}

func (flatten32) forward(src *tensor.T32, inShape []int, bsz int, _ *tensor.Arena32) (*tensor.T32, []int) {
	return src, []int{prodShape(inShape)}
}

// passthrough32 forwards the backing unchanged (inference Dropout). The
// backing is arena-owned and no node mutates its input, so sharing is safe.
type passthrough32 struct{}

func (passthrough32) forward(src *tensor.T32, inShape []int, bsz int, _ *tensor.Arena32) (*tensor.T32, []int) {
	return src, inShape
}

// maxpool32 mirrors MaxPool2D's batched kernel: branchless 2×2
// specialization, general K×K otherwise.
type maxpool32 struct{ k int }

func (p maxpool32) forward(src *tensor.T32, inShape []int, bsz int, a *tensor.Arena32) (*tensor.T32, []int) {
	ch, h, w := inShape[0], inShape[1], inShape[2]
	oh, ow := h/p.k, w/p.k
	in, on := ch*h*w, ch*oh*ow
	dst := a.NewRaw(bsz, on)
	for b := 0; b < bsz; b++ {
		if p.k == 2 {
			maxPool2Into32(dst.Data[b*on:(b+1)*on], src.Data[b*in:(b+1)*in], ch, h, w)
		} else {
			maxPoolInto32(dst.Data[b*on:(b+1)*on], src.Data[b*in:(b+1)*in], ch, h, w, p.k)
		}
	}
	return dst, []int{ch, oh, ow}
}

func maxPool2Into32(dst, src []float32, ch, h, w int) {
	oh, ow := h/2, w/2
	for c := 0; c < ch; c++ {
		for oy := 0; oy < oh; oy++ {
			r0 := src[c*h*w+(2*oy)*w:][:w]
			r1 := src[c*h*w+(2*oy+1)*w:][:w]
			drow := dst[c*oh*ow+oy*ow:][:ow]
			for ox := 0; ox < ow; ox++ {
				x := 2 * ox
				drow[ox] = max(max(r0[x], r0[x+1]), max(r1[x], r1[x+1]))
			}
		}
	}
}

func maxPoolInto32(dst, src []float32, ch, h, w, k int) {
	oh, ow := h/k, w/k
	for c := 0; c < ch; c++ {
		chanOff := c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(math.Inf(-1))
				for ky := 0; ky < k; ky++ {
					rowOff := chanOff + (oy*k+ky)*w + ox*k
					for kx := 0; kx < k; kx++ {
						if v := src[rowOff+kx]; v > best {
							best = v
						}
					}
				}
				dst[c*oh*ow+oy*ow+ox] = best
			}
		}
	}
}

// avgpool32 is the global average pool; the channel sum accumulates in
// float64 so the division matches the f64 path within one f32 rounding.
type avgpool32 struct{}

func (avgpool32) forward(src *tensor.T32, inShape []int, bsz int, a *tensor.Arena32) (*tensor.T32, []int) {
	ch, hw := inShape[0], inShape[1]*inShape[2]
	in := ch * hw
	dst := a.NewRaw(bsz, ch)
	for b := 0; b < bsz; b++ {
		sd := src.Data[b*in : (b+1)*in]
		dd := dst.Data[b*ch : (b+1)*ch]
		for c := 0; c < ch; c++ {
			s := 0.0
			for _, v := range sd[c*hw : (c+1)*hw] {
				s += float64(v)
			}
			dd[c] = float32(s / float64(hw))
		}
	}
	return dst, []int{ch}
}

// norm32 is ChannelNorm with the inference affine folded at compile time:
// y = scale[c]·x + shift[c] where scale = γ/σ and shift = β − γ·μ/σ. The
// fold reassociates the f64 expression once; the per-element work is a
// single f32 multiply-add.
type norm32 struct {
	c            int
	scale, shift []float32
}

func newNorm32(n *ChannelNorm) *norm32 {
	m := &norm32{c: n.C, scale: make([]float32, n.C), shift: make([]float32, n.C)}
	for c := 0; c < n.C; c++ {
		std := math.Sqrt(n.runVar[c] + n.Eps)
		g, beta, mu := n.gamma.Value.Data[c], n.beta.Value.Data[c], n.runMean[c]
		m.scale[c] = float32(g / std)
		m.shift[c] = float32(beta - g*mu/std)
	}
	return m
}

func (n *norm32) forward(src *tensor.T32, inShape []int, bsz int, a *tensor.Arena32) (*tensor.T32, []int) {
	hw := inShape[1] * inShape[2]
	in := n.c * hw
	dst := a.NewRaw(bsz, in)
	for b := 0; b < bsz; b++ {
		for c := 0; c < n.c; c++ {
			s, sh := n.scale[c], n.shift[c]
			row := src.Data[b*in+c*hw : b*in+(c+1)*hw]
			orow := dst.Data[b*in+c*hw : b*in+(c+1)*hw]
			for i, v := range row {
				orow[i] = s*v + sh
			}
		}
	}
	return dst, inShape
}

// residual32 composes the compiled sub-kernels; the shortcut add runs on
// aligned image-major backings. The sub-convolutions always allocate a new
// backing, so the in-place add never aliases the shortcut.
type residual32 struct {
	conv1, conv2 *conv32
	norm1, norm2 *norm32
	proj         *conv32
}

func (r *residual32) forward(src *tensor.T32, inShape []int, bsz int, a *tensor.Arena32) (*tensor.T32, []int) {
	h, hs := r.conv1.forward(src, inShape, bsz, a)
	if r.norm1 != nil {
		h, hs = r.norm1.forward(h, hs, bsz, a)
	}
	h, hs = relu32{}.forward(h, hs, bsz, a)
	h, hs = r.conv2.forward(h, hs, bsz, a)
	if r.norm2 != nil {
		h, hs = r.norm2.forward(h, hs, bsz, a)
	}
	shortcut := src
	if r.proj != nil {
		shortcut, _ = r.proj.forward(src, inShape, bsz, a)
	}
	hd, sd := h.Data, shortcut.Data
	for i := range hd {
		hd[i] += sd[i]
	}
	for i, v := range hd {
		hd[i] = max(v, 0)
	}
	return h, hs
}

// denseunit32 runs the compiled growth branch then concatenates channels
// per image.
type denseunit32 struct {
	conv *conv32
	norm *norm32
	relu relu32
}

func (u *denseunit32) forward(src *tensor.T32, inShape []int, bsz int, a *tensor.Arena32) (*tensor.T32, []int) {
	branch, bs := u.conv.forward(src, inShape, bsz, a)
	branch, bs = u.norm.forward(branch, bs, bsz, a)
	branch, bs = u.relu.forward(branch, bs, bsz, a)

	inN := prodShape(inShape)
	brN := prodShape(bs)
	on := inN + brN
	dst := a.NewRaw(bsz, on)
	for b := 0; b < bsz; b++ {
		copy(dst.Data[b*on:b*on+inN], src.Data[b*inN:(b+1)*inN])
		copy(dst.Data[b*on+inN:(b+1)*on], branch.Data[b*brN:(b+1)*brN])
	}
	return dst, []int{inShape[0] + bs[0], inShape[1], inShape[2]}
}

// fallback32 round-trips foreign layer types through their float64 Forward
// image by image, keeping Net32 total over layers added outside this file.
type fallback32 struct{ l Layer }

func (f fallback32) forward(src *tensor.T32, inShape []int, bsz int, a *tensor.Arena32) (*tensor.T32, []int) {
	in := prodShape(inShape)
	var dst *tensor.T32
	var outShape []int
	for b := 0; b < bsz; b++ {
		x := tensor.New(inShape...)
		for i, v := range src.Data[b*in : (b+1)*in] {
			x.Data[i] = float64(v)
		}
		y := f.l.Forward(x, false)
		if dst == nil {
			outShape = append([]int(nil), y.Shape...)
			dst = a.NewRaw(bsz, y.Len())
		}
		row := dst.Data[b*y.Len() : (b+1)*y.Len()]
		for i, v := range y.Data {
			row[i] = float32(v)
		}
	}
	return dst, outShape
}
