package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// This file implements the minibatch-fused inference path: instead of
// walking the network once per image, InferBatchArena walks it once per
// *batch*, with every layer processing all B images in one kernel call.
// Winograd-eligible convolutions (3×3/s1/p1, dims divisible by 4) take the
// F(4×4,3×3) transform path (tensor.WinogradConv3x3); the rest lower the
// whole batch with tensor.Im2ColBatch and run a single
// [OutC, C*KH*KW] × [C*KH*KW, B*OH*OW] blocked GEMM (tensor.GemmInto);
// Dense layers become one [B,In] × [In,Out] matmul; element-wise, pooling
// and norm layers stream the batch buffer in one branchless pass. The
// batched activation layout is image-major: one backing tensor [B, elems]
// whose row b is image b's activation in the same [C,H,W] row-major order
// the per-image path uses.
//
// Floating-point contract (verified by TestInferBatchArenaMatchesInferArena
// across every zoo topology): predictions (argmax) are identical to the
// per-image InferArena path; softmax probabilities agree within 1e-9. Two
// batched kernels reassociate floating-point arithmetic — the Winograd
// convolution (transform-domain sums, ~1e-13 relative agreement, locked by
// TestWinogradConvMatchesIm2Col) and the Dense matmul (MatMulTransBInto's
// unrolled dot + bias-after instead of bias-first) — so results are not
// guaranteed bit-exact; the remaining kernels, including the blocked GEMM
// and im2col lowering, reproduce the per-image arithmetic bit for bit. A
// batch of one falls back to InferArena and is bit-exact by construction.
//
// Like InferArena, the path never mutates network state and is safe for
// concurrent use on a shared *Network; the arena (and the batchState built
// on it) is single-goroutine.

// batchForwarder is implemented by layers with a fused batch kernel. src is
// the image-major batch backing ([bsz, prod(inShape)]); the method returns
// the output backing and the new per-image shape. Implementations must be
// read-only with temporaries drawn from st.
type batchForwarder interface {
	forwardBatchArena(src *tensor.T, inShape []int, bsz int, st *batchState) (*tensor.T, []int)
}

// batchState is the per-call scratch of one InferBatchArena invocation: the
// arena plus reusable per-image view headers into the current backing.
type batchState struct {
	a     *tensor.Arena
	views []*tensor.T
}

// imageViews refreshes the reusable headers so that views[b] aliases image b
// of src under the given per-image shape. The returned slice is valid until
// the next call.
func (st *batchState) imageViews(src *tensor.T, shape []int, bsz int) []*tensor.T {
	n := prodShape(shape)
	for b := 0; b < bsz; b++ {
		v := st.views[b]
		v.Shape = append(v.Shape[:0], shape...)
		v.Data = src.Data[b*n : (b+1)*n]
	}
	return st.views[:bsz]
}

// InferBatchArena classifies a minibatch with the fused per-layer kernels
// and returns one softmax probability tensor per input, index-aligned with
// xs. All inputs must share one shape. The returned tensors are owned by
// the arena: copy anything kept before a.Reset(). A nil arena or a batch of
// one falls back to the per-image path (bit-exact with InferArena).
func (n *Network) InferBatchArena(xs []*tensor.T, a *tensor.Arena) []*tensor.T {
	bsz := len(xs)
	out := make([]*tensor.T, bsz)
	if bsz == 0 {
		return out
	}
	if a == nil || bsz == 1 {
		for i, x := range xs {
			out[i] = n.InferArena(x, a)
		}
		return out
	}
	for _, x := range xs[1:] {
		if !x.SameShape(xs[0]) {
			panic(fmt.Sprintf("nn: InferBatchArena: mixed input shapes %v vs %v", x.Shape, xs[0].Shape))
		}
	}

	st := &batchState{a: a, views: make([]*tensor.T, bsz)}
	for b := range st.views {
		st.views[b] = new(tensor.T)
	}
	shape := append([]int(nil), xs[0].Shape...)
	elems := prodShape(shape)
	cur := a.NewRaw(bsz, elems)
	for b, x := range xs {
		copy(cur.Data[b*elems:(b+1)*elems], x.Data)
	}

	for i, l := range n.Layers {
		if bf, ok := l.(batchForwarder); ok {
			cur, shape = bf.forwardBatchArena(cur, shape, bsz, st)
		} else {
			cur, shape = forwardBatchFallback(l, cur, shape, bsz, st)
		}
		if n.ActivationHook != nil {
			for _, v := range st.imageViews(cur, shape, bsz) {
				n.ActivationHook(i, v)
			}
		}
	}

	for b, v := range st.imageViews(cur, shape, bsz) {
		out[b] = softmaxInto(a.NewRaw(v.Shape...), v)
	}
	return out
}

// forwardBatchFallback runs a layer without a fused kernel image by image
// through the arena path and repacks the outputs contiguously. It keeps
// InferBatchArena correct for layer types added outside this file.
func forwardBatchFallback(l Layer, src *tensor.T, inShape []int, bsz int, st *batchState) (*tensor.T, []int) {
	views := st.imageViews(src, inShape, bsz)
	y0 := forwardInfer(l, views[0], st.a)
	outShape := append([]int(nil), y0.Shape...)
	on := y0.Len()
	dst := st.a.NewRaw(bsz, on)
	copy(dst.Data[0:on], y0.Data)
	for b := 1; b < bsz; b++ {
		yb := forwardInfer(l, views[b], st.a)
		copy(dst.Data[b*on:(b+1)*on], yb.Data)
	}
	return dst, outShape
}

// forwardBatchArena implements batchForwarder for Conv2D. Geometry
// permitting (3×3, stride 1, pad 1, spatial dims divisible by 4 — every
// conv in the CIFAR topologies), the whole batch takes the Winograd
// F(4×4,3×3) fast path, which does a quarter of the multiplies of the
// im2col lowering; on a scalar target that algorithmic cut is the only way
// past the one-multiply-accumulate-per-cycle ceiling the GEMM already
// sits at. Other geometries take the batched im2col route: one lowering,
// one blocked GEMM for all images, then a fused bias add + transpose from
// the GEMM's channel-major [OutC, B, OH*OW] layout back to image-major.
func (c *Conv2D) forwardBatchArena(src *tensor.T, inShape []int, bsz int, st *batchState) (*tensor.T, []int) {
	g := c.geometry(inShape)
	oh, ow := g.OutH(), g.OutW()
	ohw := oh * ow
	ckk := c.InC * c.KH * c.KW

	if tensor.WinogradEligible(g) {
		dst := st.a.NewRaw(bsz, c.OutC*ohw)
		if c.winoU != nil && tensor.PrepackEnabled() {
			// Compile-time filter transform (Network.Prepack); input and
			// output transforms are identical, so results match the
			// transform-per-call path bit for bit. Verification below is
			// unaffected: VerifyWinogradConv works from image + weights.
			tensor.WinogradConv3x3Pre(dst, src, bsz, c.OutC, c.winoU, c.bias.Value.Data, g, st.a)
		} else {
			tensor.WinogradConv3x3(dst, src, bsz, c.OutC, c.weight.Value, c.bias.Value.Data, g, st.a)
		}
		if s := st.a.Abft(); s != nil {
			s.Record(tensor.VerifyWinogradConv(dst, src, bsz, c.OutC, c.weight.Value, c.bias.Value.Data, g))
		}
		return dst, []int{c.OutC, oh, ow}
	}

	cm := st.a.NewRaw(c.OutC, bsz*ohw)
	if tensor.PrepackEnabled() && st.a.Abft() == nil && bsz*ohw >= tensor.ImplicitConvMinN {
		// Implicit GEMM: the [ckk, B*OH*OW] column matrix is generated
		// panel by panel inside the GEMM instead of being materialized —
		// bit-identical to the explicit lowering below. Verified mode
		// keeps the explicit path: the column-checksum verifier needs the
		// materialized B operand.
		tensor.ConvGemmIm2Col(cm, c.weight.Value, src.Data[:bsz*c.InC*g.InH*g.InW], bsz, g)
	} else {
		cols := st.a.NewRaw(ckk, bsz*ohw)
		tensor.Im2ColBatch(cols, st.imageViews(src, inShape, bsz), g)
		tensor.GemmInto(cm, c.weight.Value, cols)
		if s := st.a.Abft(); s != nil {
			s.Record(tensor.VerifyGemm(cm, c.weight.Value, cols))
		}
	}

	dst := st.a.NewRaw(bsz, c.OutC*ohw)
	for oc := 0; oc < c.OutC; oc++ {
		bias := c.bias.Value.Data[oc]
		crow := cm.Data[oc*bsz*ohw : (oc+1)*bsz*ohw]
		for b := 0; b < bsz; b++ {
			drow := dst.Data[b*c.OutC*ohw+oc*ohw : b*c.OutC*ohw+(oc+1)*ohw]
			srow := crow[b*ohw : (b+1)*ohw]
			for i, v := range srow {
				drow[i] = v + bias
			}
		}
	}
	return dst, []int{c.OutC, oh, ow}
}

// forwardBatchArena implements batchForwarder for Dense: the batch is
// already a [B, In] row-major matrix, so the whole layer is one
// C = X × Wᵀ matmul plus a bias row broadcast.
func (d *Dense) forwardBatchArena(src *tensor.T, inShape []int, bsz int, st *batchState) (*tensor.T, []int) {
	if prodShape(inShape) != d.In {
		panic(fmt.Sprintf("nn: %s: batched input of %d elements, want %d", d.Name(), prodShape(inShape), d.In))
	}
	x := src.Reshape(bsz, d.In)
	dst := st.a.NewRaw(bsz, d.Out)
	tensor.MatMulTransBInto(dst, x, d.weight.Value)
	if s := st.a.Abft(); s != nil {
		s.Record(tensor.VerifyMatMulTransB(dst, x, d.weight.Value))
	}
	bias := d.bias.Value.Data
	for b := 0; b < bsz; b++ {
		row := dst.Data[b*d.Out : (b+1)*d.Out]
		for o, bv := range bias {
			row[o] += bv
		}
	}
	return dst, []int{d.Out}
}

// forwardBatchArena implements batchForwarder for ReLU: one branchless
// pass over the whole batch buffer. max(v, 0) produces the same value as
// the per-image branch for every real input (a rectifier's compare on
// roughly sign-random conv outputs mispredicts about half the time, which
// triples the cost of this trivial kernel).
func (r *ReLU) forwardBatchArena(src *tensor.T, inShape []int, bsz int, st *batchState) (*tensor.T, []int) {
	dst := st.a.NewRaw(bsz, prodShape(inShape))
	dd := dst.Data
	for i, v := range src.Data {
		dd[i] = max(v, 0)
	}
	return dst, inShape
}

// forwardBatchArena implements batchForwarder for LeakyReLU. For the usual
// 0 ≤ α ≤ 1 the rectifier is exactly max(v, α·v) — branchless; other
// slopes keep the literal comparison.
func (l *LeakyReLU) forwardBatchArena(src *tensor.T, inShape []int, bsz int, st *batchState) (*tensor.T, []int) {
	dst := st.a.NewRaw(bsz, prodShape(inShape))
	dd := dst.Data
	if a := l.Alpha; a >= 0 && a <= 1 {
		for i, v := range src.Data {
			dd[i] = max(v, a*v)
		}
		return dst, inShape
	}
	for i, v := range src.Data {
		if v > 0 {
			dd[i] = v
		} else {
			dd[i] = l.Alpha * v
		}
	}
	return dst, inShape
}

// forwardBatchArena implements batchForwarder for Flatten: a pure shape
// change — the image-major backing is already flat per image.
func (f *Flatten) forwardBatchArena(src *tensor.T, inShape []int, bsz int, _ *batchState) (*tensor.T, []int) {
	return src, []int{prodShape(inShape)}
}

// forwardBatchArena implements batchForwarder for Dropout (inference copy).
func (d *Dropout) forwardBatchArena(src *tensor.T, inShape []int, bsz int, st *batchState) (*tensor.T, []int) {
	dst := st.a.NewRaw(bsz, prodShape(inShape))
	copy(dst.Data, src.Data)
	return dst, inShape
}

// forwardBatchArena implements batchForwarder for MaxPool2D: a branchless
// 2×2 kernel for the ubiquitous K=2 case (the data-dependent compare of
// the general kernel mispredicts constantly on conv activations), the
// per-image kernel otherwise, applied to each contiguous image slice.
func (p *MaxPool2D) forwardBatchArena(src *tensor.T, inShape []int, bsz int, st *batchState) (*tensor.T, []int) {
	ch, h, w := inShape[0], inShape[1], inShape[2]
	oh, ow := h/p.K, w/p.K
	in, on := ch*h*w, ch*oh*ow
	dst := st.a.NewRaw(bsz, on)
	for b := 0; b < bsz; b++ {
		if p.K == 2 {
			maxPool2Into(dst.Data[b*on:(b+1)*on], src.Data[b*in:(b+1)*in], ch, h, w)
		} else {
			maxPoolInto(dst.Data[b*on:(b+1)*on], src.Data[b*in:(b+1)*in], ch, h, w, p.K)
		}
	}
	return dst, []int{ch, oh, ow}
}

// maxPool2Into is the branchless 2×2 specialization of maxPoolInto: each
// output is max of a 2×2 window, computed with the float max builtin
// (compare-free on amd64). Values match maxPoolInto exactly for every
// real input; only the sign of a zero can differ when a window ties
// between -0 and +0.
func maxPool2Into(dst, src []float64, ch, h, w int) {
	oh, ow := h/2, w/2
	for c := 0; c < ch; c++ {
		for oy := 0; oy < oh; oy++ {
			r0 := src[c*h*w+(2*oy)*w:][:w]
			r1 := src[c*h*w+(2*oy+1)*w:][:w]
			drow := dst[c*oh*ow+oy*ow:][:ow]
			for ox := 0; ox < ow; ox++ {
				x := 2 * ox
				drow[ox] = max(max(r0[x], r0[x+1]), max(r1[x], r1[x+1]))
			}
		}
	}
}

// maxPoolInto writes the K×K max-pool of one [ch,h,w] image into dst.
func maxPoolInto(dst, src []float64, ch, h, w, k int) {
	oh, ow := h/k, w/k
	for c := 0; c < ch; c++ {
		chanOff := c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				for ky := 0; ky < k; ky++ {
					rowOff := chanOff + (oy*k+ky)*w + ox*k
					for kx := 0; kx < k; kx++ {
						if v := src[rowOff+kx]; v > best {
							best = v
						}
					}
				}
				dst[c*oh*ow+oy*ow+ox] = best
			}
		}
	}
}

// forwardBatchArena implements batchForwarder for AvgPool2D (global average
// per channel).
func (p *AvgPool2D) forwardBatchArena(src *tensor.T, inShape []int, bsz int, st *batchState) (*tensor.T, []int) {
	ch, hw := inShape[0], inShape[1]*inShape[2]
	in := ch * hw
	dst := st.a.NewRaw(bsz, ch)
	for b := 0; b < bsz; b++ {
		sd := src.Data[b*in : (b+1)*in]
		dd := dst.Data[b*ch : (b+1)*ch]
		for c := 0; c < ch; c++ {
			s := 0.0
			for _, v := range sd[c*hw : (c+1)*hw] {
				s += v
			}
			dd[c] = s / float64(hw)
		}
	}
	return dst, []int{ch}
}

// forwardBatchArena implements batchForwarder for ChannelNorm: the per-
// channel affine is hoisted once and streamed over every image's channel
// row, using the exact per-image expression so results stay bit-identical.
func (nrm *ChannelNorm) forwardBatchArena(src *tensor.T, inShape []int, bsz int, st *batchState) (*tensor.T, []int) {
	hw := inShape[1] * inShape[2]
	in := nrm.C * hw
	dst := st.a.NewRaw(bsz, in)
	for c := 0; c < nrm.C; c++ {
		std := math.Sqrt(nrm.runVar[c] + nrm.Eps)
		g, bta, mu := nrm.gamma.Value.Data[c], nrm.beta.Value.Data[c], nrm.runMean[c]
		for b := 0; b < bsz; b++ {
			row := src.Data[b*in+c*hw : b*in+(c+1)*hw]
			orow := dst.Data[b*in+c*hw : b*in+(c+1)*hw]
			for i, v := range row {
				orow[i] = g*(v-mu)/std + bta
			}
		}
	}
	return dst, inShape
}

// forwardBatchArena implements batchForwarder for ResidualBlock by
// composing the batched sub-kernels; the shortcut add happens on aligned
// image-major backings.
func (b *ResidualBlock) forwardBatchArena(src *tensor.T, inShape []int, bsz int, st *batchState) (*tensor.T, []int) {
	h, hs := b.conv1.forwardBatchArena(src, inShape, bsz, st)
	if b.norm1 != nil {
		h, hs = b.norm1.forwardBatchArena(h, hs, bsz, st)
	}
	h, hs = b.relu1.forwardBatchArena(h, hs, bsz, st)
	h, hs = b.conv2.forwardBatchArena(h, hs, bsz, st)
	if b.norm2 != nil {
		h, hs = b.norm2.forwardBatchArena(h, hs, bsz, st)
	}
	shortcut := src
	if b.proj != nil {
		shortcut, _ = b.proj.forwardBatchArena(src, inShape, bsz, st)
	}
	h.AddInPlace(shortcut)
	return b.outRelu.forwardBatchArena(h, hs, bsz, st)
}

// forwardBatchArena implements batchForwarder for DenseUnit: batched
// branch, then a per-image channel concatenation into the new backing.
func (u *DenseUnit) forwardBatchArena(src *tensor.T, inShape []int, bsz int, st *batchState) (*tensor.T, []int) {
	branch, bs := u.conv.forwardBatchArena(src, inShape, bsz, st)
	branch, bs = u.norm.forwardBatchArena(branch, bs, bsz, st)
	branch, bs = u.relu.forwardBatchArena(branch, bs, bsz, st)

	inN := prodShape(inShape)
	brN := prodShape(bs)
	on := inN + brN
	dst := st.a.NewRaw(bsz, on)
	for b := 0; b < bsz; b++ {
		copy(dst.Data[b*on:b*on+inN], src.Data[b*inN:(b+1)*inN])
		copy(dst.Data[b*on+inN:(b+1)*on], branch.Data[b*brN:(b+1)*brN])
	}
	return dst, []int{inShape[0] + bs[0], inShape[1], inShape[2]}
}
