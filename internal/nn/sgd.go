package nn

import (
	"math"

	"repro/internal/tensor"
)

// SGD is a stochastic gradient descent optimizer with classical momentum,
// decoupled weight decay, and optional global gradient-norm clipping.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	// ClipNorm, when positive, rescales the global gradient so its L2 norm
	// does not exceed this value. Useful for the deeper un-batched models.
	ClipNorm float64

	velocity map[*Param]*tensor.T
}

// NewSGD creates an optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param]*tensor.T)}
}

// Step applies one update to params using their accumulated gradients scaled
// by 1/batch (pass batch=1 for per-sample updates), then zeroes the
// gradients.
func (o *SGD) Step(params []*Param, batch int) {
	if batch < 1 {
		batch = 1
	}
	scale := 1.0 / float64(batch)

	if o.ClipNorm > 0 {
		sq := 0.0
		for _, p := range params {
			for _, g := range p.Grad.Data {
				g *= scale
				sq += g * g
			}
		}
		if norm := math.Sqrt(sq); norm > o.ClipNorm {
			scale *= o.ClipNorm / norm
		}
	}

	for _, p := range params {
		v, ok := o.velocity[p]
		if !ok {
			v = p.Value.ZerosLike()
			o.velocity[p] = v
		}
		wd := 0.0
		if p.Decay {
			wd = o.WeightDecay
		}
		for i := range p.Value.Data {
			g := p.Grad.Data[i]*scale + wd*p.Value.Data[i]
			v.Data[i] = o.Momentum*v.Data[i] - o.LR*g
			p.Value.Data[i] += v.Data[i]
			p.Grad.Data[i] = 0
		}
	}
}
