package nn

import "repro/internal/tensor"

// Compile-time weight prepacking for the f64 reference path (DESIGN.md
// §14). The f32/int8 backends pack inside Compile32/CompileInt8; the f64
// path has no compile step, so Prepack is its equivalent: a one-time walk
// that precomputes everything the batched forward otherwise rederives
// from the (frozen) weights on every call — today the Winograd filter
// transform of each eligible convolution.

// Prepack precomputes per-layer packed weight forms for the batched
// inference path. Call it once on a frozen network (core.PrepareBackends
// does); results are bit-identical with or without it. Safe to call
// repeatedly; Conv2D.Backward invalidates stale packs if the network is
// trained afterwards. Not safe to call concurrently with inference on
// the same network.
func (n *Network) Prepack() {
	for _, l := range n.Layers {
		prepackLayer(l)
	}
}

func prepackLayer(l Layer) {
	switch t := l.(type) {
	case *Conv2D:
		t.prepackWeights()
	case *ResidualBlock:
		t.conv1.prepackWeights()
		t.conv2.prepackWeights()
		if t.proj != nil {
			t.proj.prepackWeights()
		}
	case *DenseUnit:
		t.conv.prepackWeights()
	}
}

// prepackWeights computes the packed forms a Conv2D can precompute: the
// Winograd filter transform when the kernel shape permits the F(4×4,3×3)
// path (spatial eligibility is re-checked per forward, but U itself only
// depends on the kernel being 3×3/s1/p1).
func (c *Conv2D) prepackWeights() {
	if c.KH == 3 && c.KW == 3 && c.Stride == 1 && c.Pad == 1 {
		c.winoU = tensor.PackWinoFilter(c.weight.Value, c.OutC, c.InC)
	}
}
