package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-d convolution over [C,H,W] inputs implemented by im2col
// lowering followed by a matmul against a [OutC, InC*KH*KW] weight matrix.
type Conv2D struct {
	InC, OutC int
	KH, KW    int
	Stride    int
	Pad       int

	weight *Param // [OutC, InC*KH*KW]
	bias   *Param // [OutC]

	// winoU is the prepacked Winograd filter transform (36×OutC×InC,
	// tensor.PackWinoFilter), set by Network.Prepack for frozen inference
	// networks whose kernel is 3×3/s1/p1 and invalidated by Backward
	// (training mutates the weights it was derived from). nil means the
	// batched forward recomputes the transform per call.
	winoU []float64

	// cached state for Backward
	geom tensor.ConvGeom
	cols *tensor.T // im2col of last training input
}

var _ Layer = (*Conv2D)(nil)
var _ Counter = (*Conv2D)(nil)

// NewConv2D creates a convolution layer with He-initialized weights.
func NewConv2D(inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	w := tensor.New(outC, inC*k*k)
	heInit(w, inC*k*k, rng)
	c := &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
		weight: newParam("weight", w, true),
		bias:   newParam("bias", tensor.New(outC), false),
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv%dx%d(%d->%d,s%d,p%d)", c.KH, c.KW, c.InC, c.OutC, c.Stride, c.Pad)
}

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != c.InC {
		return nil, shapeErr(c.Name(), in, fmt.Sprintf("[%d H W]", c.InC))
	}
	g := c.geometry(in)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("nn: %s: %w", c.Name(), err)
	}
	return []int{c.OutC, g.OutH(), g.OutW()}, nil
}

func (c *Conv2D) geometry(in []int) tensor.ConvGeom {
	return tensor.ConvGeom{
		InC: c.InC, InH: in[1], InW: in[2],
		KH: c.KH, KW: c.KW, Stride: c.Stride, Pad: c.Pad,
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.T, train bool) *tensor.T {
	g := c.geometry(x.Shape)
	oh, ow := g.OutH(), g.OutW()
	cols := tensor.New(c.InC*c.KH*c.KW, oh*ow)
	tensor.Im2Col(cols, x, g)

	out := tensor.New(c.OutC, oh*ow)
	tensor.MatMulInto(out, c.weight.Value, cols)
	// Broadcast bias over each output channel row.
	for oc := 0; oc < c.OutC; oc++ {
		b := c.bias.Value.Data[oc]
		row := out.Data[oc*oh*ow : (oc+1)*oh*ow]
		for i := range row {
			row[i] += b
		}
	}
	if train {
		c.geom = g
		c.cols = cols
	}
	return out.Reshape(c.OutC, oh, ow)
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.T) *tensor.T {
	if c.cols == nil {
		panic("nn: Conv2D.Backward called before Forward(train=true)")
	}
	// Training is about to update the weights this pack was derived from.
	c.winoU = nil
	g := c.geom
	oh, ow := g.OutH(), g.OutW()
	g2 := grad.Reshape(c.OutC, oh*ow)

	// dW += dY × colsᵀ
	dw := tensor.New(c.OutC, c.InC*c.KH*c.KW)
	tensor.MatMulTransBInto(dw, g2, c.cols)
	c.weight.Grad.AddInPlace(dw)

	// db += row sums of dY
	for oc := 0; oc < c.OutC; oc++ {
		s := 0.0
		for _, v := range g2.Data[oc*oh*ow : (oc+1)*oh*ow] {
			s += v
		}
		c.bias.Grad.Data[oc] += s
	}

	// dX = col2im(Wᵀ × dY)
	dcols := tensor.New(c.InC*c.KH*c.KW, oh*ow)
	tensor.MatMulTransAInto(dcols, c.weight.Value, g2)
	dx := tensor.New(g.InC, g.InH, g.InW)
	tensor.Col2Im(dx, dcols, g)
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.weight, c.bias} }

// Stats implements Counter.
func (c *Conv2D) Stats(in []int) Stats {
	g := c.geometry(in)
	outElems := c.OutC * g.OutH() * g.OutW()
	return Stats{
		MACs:       outElems * c.InC * c.KH * c.KW,
		ParamElems: c.weight.Value.Len() + c.bias.Value.Len(),
		ActElems:   outElems,
	}
}
