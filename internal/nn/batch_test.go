package nn_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/tensor"
)

// batchFixtures builds one (untrained, deterministically initialized)
// network per zoo topology at its native input shape, plus a pool of random
// inputs. Training is irrelevant to the kernel-equivalence property, so the
// fixtures stay fast.
func batchFixtures(t testing.TB) []struct {
	name string
	net  interface {
		InferArena(*tensor.T, *tensor.Arena) *tensor.T
		InferBatchArena([]*tensor.T, *tensor.Arena) []*tensor.T
	}
	xs []*tensor.T
} {
	t.Helper()
	type fixture = struct {
		name string
		net  interface {
			InferArena(*tensor.T, *tensor.Arena) *tensor.T
			InferBatchArena([]*tensor.T, *tensor.Arena) []*tensor.T
		}
		xs []*tensor.T
	}
	var fs []fixture
	for _, b := range model.Benchmarks() {
		cfg, err := b.DatasetConfig(0) // dataset.Fast
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(71))
		net := b.Build(rng, cfg.Classes, []int{cfg.Channels, cfg.H, cfg.W})
		xs := make([]*tensor.T, 32)
		for i := range xs {
			xs[i] = tensor.New(cfg.Channels, cfg.H, cfg.W)
			xs[i].FillUniform(rng, 0, 1)
		}
		fs = append(fs, fixture{name: b.Name, net: net, xs: xs})
	}
	return fs
}

// TestInferBatchArenaMatchesInferArena is the batched/per-image equivalence
// contract: for every zoo topology and B ∈ {1, 2, 7, 32}, the fused batch
// path must agree with per-image InferArena on the argmax always and on
// every softmax probability within 1e-9 (the batched Dense kernel
// reassociates floating-point sums; every other kernel is bit-exact).
func TestInferBatchArenaMatchesInferArena(t *testing.T) {
	for _, f := range batchFixtures(t) {
		f := f
		t.Run(f.name, func(t *testing.T) {
			ref := tensor.NewArena()
			want := make([]*tensor.T, len(f.xs))
			for i, x := range f.xs {
				want[i] = f.net.InferArena(x, ref).Clone()
				ref.Reset()
			}
			for _, bsz := range []int{1, 2, 7, 32} {
				a := tensor.NewArena()
				got := f.net.InferBatchArena(f.xs[:bsz], a)
				if len(got) != bsz {
					t.Fatalf("B=%d: got %d outputs", bsz, len(got))
				}
				for i, p := range got {
					wi, _ := want[i].MaxIndex()
					gi, _ := p.MaxIndex()
					if wi != gi {
						t.Errorf("B=%d image %d: argmax %d != per-image %d", bsz, i, gi, wi)
					}
					for j := range p.Data {
						if d := math.Abs(p.Data[j] - want[i].Data[j]); d > 1e-9 {
							t.Fatalf("B=%d image %d class %d: |Δsoftmax| = %g > 1e-9 (batched %v, per-image %v)",
								bsz, i, j, d, p.Data[j], want[i].Data[j])
						}
					}
				}
				// B=1 must be bit-exact: it takes the per-image path.
				if bsz == 1 {
					for j := range got[0].Data {
						if got[0].Data[j] != want[0].Data[j] {
							t.Fatalf("B=1 image 0 class %d: not bit-exact", j)
						}
					}
				}
				a.Reset()
			}
		})
	}
}

// TestInferBatchArenaSharedNetwork hammers one network from several
// goroutines, each running batched inference with its own arena — the
// read-only inference contract extended to the fused path (run under -race
// via the core race job, and meaningful without it too: results must match
// the single-goroutine reference exactly).
func TestInferBatchArenaSharedNetwork(t *testing.T) {
	f := batchFixtures(t)[1] // convnet
	ref := tensor.NewArena()
	want := f.net.InferBatchArena(f.xs, ref)
	wantCopy := make([]*tensor.T, len(want))
	for i, w := range want {
		wantCopy[i] = w.Clone()
	}
	ref.Reset()

	const goroutines = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := tensor.NewArena()
			for rep := 0; rep < 3; rep++ {
				got := f.net.InferBatchArena(f.xs, a)
				for i, p := range got {
					for j := range p.Data {
						if p.Data[j] != wantCopy[i].Data[j] {
							errs <- fmt.Errorf("image %d class %d: concurrent result diverged", i, j)
							return
						}
					}
				}
				a.Reset()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestInferBatchArenaEdgeCases covers the degenerate entry points.
func TestInferBatchArenaEdgeCases(t *testing.T) {
	f := batchFixtures(t)[0] // lenet5
	if out := f.net.InferBatchArena(nil, tensor.NewArena()); len(out) != 0 {
		t.Errorf("empty batch returned %d outputs", len(out))
	}
	// nil arena falls back to Infer per image.
	out := f.net.InferBatchArena(f.xs[:2], nil)
	a := tensor.NewArena()
	want := f.net.InferBatchArena(f.xs[:2], a)
	for i := range out {
		for j := range out[i].Data {
			if math.Abs(out[i].Data[j]-want[i].Data[j]) > 1e-9 {
				t.Fatalf("nil-arena path diverged at image %d class %d", i, j)
			}
		}
	}
	// Mixed shapes must panic.
	defer func() {
		if recover() == nil {
			t.Error("mixed-shape batch did not panic")
		}
	}()
	f.net.InferBatchArena([]*tensor.T{f.xs[0], tensor.New(1, 2, 2)}, a)
}
