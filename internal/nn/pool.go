package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MaxPool2D is a non-overlapping 2-d max pooling layer over [C,H,W] inputs.
// Inputs whose spatial extent is not a multiple of the window are cropped,
// matching the common floor-division convention.
type MaxPool2D struct {
	K int // window size and stride

	inShape []int
	argmax  []int // flat input index chosen per output element
}

var _ Layer = (*MaxPool2D)(nil)
var _ Counter = (*MaxPool2D)(nil)

// NewMaxPool2D creates a max-pooling layer with a k×k window and stride k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{K: k} }

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("maxpool%dx%d", p.K, p.K) }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, shapeErr(p.Name(), in, "[C H W]")
	}
	oh, ow := in[1]/p.K, in[2]/p.K
	if oh == 0 || ow == 0 {
		return nil, fmt.Errorf("nn: %s: input %v smaller than window", p.Name(), in)
	}
	return []int{in[0], oh, ow}, nil
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.T, train bool) *tensor.T {
	ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := h/p.K, w/p.K
	out := tensor.New(ch, oh, ow)
	var arg []int
	if train {
		arg = make([]int, ch*oh*ow)
	}
	for c := 0; c < ch; c++ {
		chanOff := c * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				bestIdx := -1
				for ky := 0; ky < p.K; ky++ {
					rowOff := chanOff + (oy*p.K+ky)*w + ox*p.K
					for kx := 0; kx < p.K; kx++ {
						if v := x.Data[rowOff+kx]; v > best {
							best = v
							bestIdx = rowOff + kx
						}
					}
				}
				oi := c*oh*ow + oy*ow + ox
				out.Data[oi] = best
				if train {
					arg[oi] = bestIdx
				}
			}
		}
	}
	if train {
		p.inShape = append([]int(nil), x.Shape...)
		p.argmax = arg
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *tensor.T) *tensor.T {
	if p.argmax == nil {
		panic("nn: MaxPool2D.Backward called before Forward(train=true)")
	}
	dx := tensor.New(p.inShape...)
	for oi, ii := range p.argmax {
		dx.Data[ii] += grad.Data[oi]
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// Stats implements Counter.
func (p *MaxPool2D) Stats(in []int) Stats {
	oh, ow := in[1]/p.K, in[2]/p.K
	return Stats{ActElems: in[0] * oh * ow}
}

// AvgPool2D is a global average pooling layer reducing [C,H,W] to [C].
type AvgPool2D struct {
	inShape []int
}

var _ Layer = (*AvgPool2D)(nil)
var _ Counter = (*AvgPool2D)(nil)

// NewGlobalAvgPool creates a global average pooling layer.
func NewGlobalAvgPool() *AvgPool2D { return &AvgPool2D{} }

// Name implements Layer.
func (p *AvgPool2D) Name() string { return "globalavgpool" }

// OutShape implements Layer.
func (p *AvgPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, shapeErr(p.Name(), in, "[C H W]")
	}
	return []int{in[0]}, nil
}

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.T, train bool) *tensor.T {
	ch, hw := x.Shape[0], x.Shape[1]*x.Shape[2]
	out := tensor.New(ch)
	for c := 0; c < ch; c++ {
		s := 0.0
		for _, v := range x.Data[c*hw : (c+1)*hw] {
			s += v
		}
		out.Data[c] = s / float64(hw)
	}
	if train {
		p.inShape = append([]int(nil), x.Shape...)
	}
	return out
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(grad *tensor.T) *tensor.T {
	if p.inShape == nil {
		panic("nn: AvgPool2D.Backward called before Forward(train=true)")
	}
	ch, hw := p.inShape[0], p.inShape[1]*p.inShape[2]
	dx := tensor.New(p.inShape...)
	inv := 1.0 / float64(hw)
	for c := 0; c < ch; c++ {
		g := grad.Data[c] * inv
		row := dx.Data[c*hw : (c+1)*hw]
		for i := range row {
			row[i] = g
		}
	}
	return dx
}

// Params implements Layer.
func (p *AvgPool2D) Params() []*Param { return nil }

// Stats implements Counter.
func (p *AvgPool2D) Stats(in []int) Stats { return Stats{ActElems: in[0]} }
