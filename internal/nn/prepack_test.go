package nn_test

import (
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// withPrepack runs f twice — prepacked paths enabled and disabled — and
// returns both result sets for comparison. Restores the global switch.
func withPrepack[R any](f func() R) (on, off R) {
	prev := tensor.SetPrepack(true)
	on = f()
	tensor.SetPrepack(false)
	off = f()
	tensor.SetPrepack(prev)
	return on, off
}

// TestPrepackBitIdenticalF64 locks the f64 tentpole contract across the
// zoo: Prepack + the implicit-GEMM/prepacked-Winograd batched forward is
// bit-identical to the legacy materializing path for every topology, batch
// size, SIMD setting, and with verification enabled.
func TestPrepackBitIdenticalF64(t *testing.T) {
	for _, f := range backendFixtures(t) {
		f := f
		f.net.Prepack()
		t.Run(f.name, func(t *testing.T) {
			withBackendSIMD(t, func(t *testing.T) {
				for _, verified := range []bool{false, true} {
					for _, bsz := range []int{1, 2, 7, 32} {
						run := func() [][]float64 {
							a := tensor.NewArena()
							if verified {
								a.SetAbft(&tensor.AbftStats{})
							}
							outs := f.net.InferBatchArena(f.xs[:bsz], a)
							rows := make([][]float64, len(outs))
							for i, o := range outs {
								rows[i] = append([]float64(nil), o.Data...)
							}
							return rows
						}
						on, off := withPrepack(run)
						for i := range on {
							for j := range on[i] {
								if on[i][j] != off[i][j] {
									t.Fatalf("verified=%v B=%d image %d class %d: prepack %v legacy %v",
										verified, bsz, i, j, on[i][j], off[i][j])
								}
							}
						}
					}
				}
			})
		})
	}
}

// TestPrepackBitIdenticalF32Int8 is the same contract for the compiled
// backends: Compile32/CompileInt8 pack at compile time, and their forwards
// must match the legacy per-call paths bit-exactly under every SIMD ×
// verified × batch-size combination.
func TestPrepackBitIdenticalF32Int8(t *testing.T) {
	for _, f := range backendFixtures(t) {
		f := f
		t.Run(f.name, func(t *testing.T) {
			net32, err := f.net.Compile32()
			if err != nil {
				t.Fatal(err)
			}
			net8, err := f.net.CompileInt8(f.xs[:8])
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range []struct {
				name string
				net  *nn.Net32
			}{{"f32", net32}, {"int8", net8}} {
				b := b
				t.Run(b.name, func(t *testing.T) {
					withBackendSIMD(t, func(t *testing.T) {
						for _, verified := range []bool{false, true} {
							for _, bsz := range []int{1, 2, 7, 32} {
								run := func() [][]float64 {
									a := tensor.NewArena32()
									if verified {
										a.SetAbft(&tensor.AbftStats{})
									}
									return b.net.InferBatch(f.xs[:bsz], a)
								}
								on, off := withPrepack(run)
								for i := range on {
									for j := range on[i] {
										if on[i][j] != off[i][j] {
											t.Fatalf("verified=%v B=%d image %d class %d: prepack %v legacy %v",
												verified, bsz, i, j, on[i][j], off[i][j])
										}
									}
								}
							}
						}
					})
				})
			}
		})
	}
}

// TestPrepackSharedNetworkConcurrent hammers one compiled (and prepacked)
// network from many goroutines with private arenas — the serving layout.
// Run under -race this locks that the prepacked forward paths (pooled
// generation blocks, shared packed weight buffers) are data-race free and
// deterministic across goroutines.
func TestPrepackSharedNetworkConcurrent(t *testing.T) {
	fs := backendFixtures(t)
	f := fs[1] // convnet: conv-heavy, exercises every implicit path
	f.net.Prepack()
	net32, err := f.net.Compile32()
	if err != nil {
		t.Fatal(err)
	}
	net8, err := f.net.CompileInt8(f.xs[:8])
	if err != nil {
		t.Fatal(err)
	}

	prev := tensor.SetPrepack(true)
	defer tensor.SetPrepack(prev)

	want32 := net32.InferBatch(f.xs[:8], tensor.NewArena32())
	want8 := net8.InferBatch(f.xs[:8], tensor.NewArena32())
	wantF64 := func() [][]float64 {
		a := tensor.NewArena()
		outs := f.net.InferBatchArena(f.xs[:8], a)
		rows := make([][]float64, len(outs))
		for i, o := range outs {
			rows[i] = append([]float64(nil), o.Data...)
		}
		return rows
	}()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers*3)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				a32 := tensor.NewArena32()
				if got := net32.InferBatch(f.xs[:8], a32); !rowsEqual(got, want32) {
					errs <- "f32 rows diverged across goroutines"
					return
				}
				a32.Reset()
				if got := net8.InferBatch(f.xs[:8], a32); !rowsEqual(got, want8) {
					errs <- "int8 rows diverged across goroutines"
					return
				}
				a := tensor.NewArena()
				outs := f.net.InferBatchArena(f.xs[:8], a)
				for i, o := range outs {
					for j, v := range o.Data {
						if v != wantF64[i][j] {
							errs <- "f64 rows diverged across goroutines"
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func rowsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
