package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Sample is one labeled training or evaluation example.
type Sample struct {
	X     *tensor.T
	Label int
}

// TrainConfig controls the SGD training loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	// LRDecay multiplies the learning rate after every epoch (1 = constant).
	LRDecay     float64
	Momentum    float64
	WeightDecay float64
	ClipNorm    float64
	Seed        int64
	// Progress, when non-nil, receives a line per epoch.
	Progress func(epoch int, loss float64)
}

// withDefaults fills zero fields with sensible defaults.
func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.LRDecay == 0 {
		c.LRDecay = 0.7
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 5
	}
	return c
}

// Train runs mini-batch SGD over the samples and returns the mean loss of
// the final epoch. The sample order is shuffled each epoch with a
// deterministic RNG derived from cfg.Seed, so training is reproducible.
func Train(net *Network, samples []Sample, cfg TrainConfig) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("nn: Train: no samples")
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := NewSGD(cfg.LR, cfg.Momentum)
	opt.WeightDecay = cfg.WeightDecay
	opt.ClipNorm = cfg.ClipNorm
	params := net.Params()

	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}

	var epochLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss = 0
		inBatch := 0
		for _, idx := range order {
			s := samples[idx]
			logits := net.Forward(s.X, true)
			loss, grad := SoftmaxCrossEntropy(logits, s.Label)
			epochLoss += loss
			net.Backward(grad)
			inBatch++
			if inBatch == cfg.BatchSize {
				opt.Step(params, inBatch)
				inBatch = 0
			}
		}
		if inBatch > 0 {
			opt.Step(params, inBatch)
		}
		epochLoss /= float64(len(samples))
		if cfg.Progress != nil {
			cfg.Progress(epoch, epochLoss)
		}
		opt.LR *= cfg.LRDecay
	}
	return epochLoss, nil
}

// Accuracy returns the top-1 accuracy of net over the samples.
func Accuracy(net *Network, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if label, _ := net.Predict(s.X); label == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// InferAll runs inference over all samples and returns the softmax
// probability vector for each. This is the bulk entry point used to record
// member-network outputs once so that threshold sweeps are post-processing.
func InferAll(net *Network, samples []Sample) [][]float64 {
	out := make([][]float64, len(samples))
	for i, s := range samples {
		out[i] = append([]float64(nil), net.Infer(s.X).Data...)
	}
	return out
}

// LogitsAll runs the forward pass over all samples and returns raw logits;
// used by the calibration experiments, which re-apply temperature-scaled
// softmax.
func LogitsAll(net *Network, samples []Sample) [][]float64 {
	out := make([][]float64, len(samples))
	for i, s := range samples {
		out[i] = append([]float64(nil), net.Forward(s.X, false).Data...)
	}
	return out
}
