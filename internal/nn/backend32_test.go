package nn_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// backendFixture is one zoo topology with a random-input pool — the same
// construction as batchFixtures, but with the concrete network type so the
// compiled backends are reachable.
type backendFixture struct {
	name string
	net  *nn.Network
	xs   []*tensor.T
}

func backendFixtures(t testing.TB) []backendFixture {
	t.Helper()
	var fs []backendFixture
	for _, b := range model.Benchmarks() {
		cfg, err := b.DatasetConfig(0) // dataset.Fast
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(71))
		net := b.Build(rng, cfg.Classes, []int{cfg.Channels, cfg.H, cfg.W})
		xs := make([]*tensor.T, 32)
		for i := range xs {
			xs[i] = tensor.New(cfg.Channels, cfg.H, cfg.W)
			xs[i].FillUniform(rng, 0, 1)
		}
		fs = append(fs, backendFixture{name: b.Name, net: net, xs: xs})
	}
	return fs
}

// withBackendSIMD runs f under both kernel implementations so the compiled
// convolution exercises both its im2col+FMA and Winograd/scalar routes.
func withBackendSIMD(t *testing.T, f func(t *testing.T)) {
	t.Run("scalar", func(t *testing.T) {
		prev := tensor.SetSIMD(false)
		defer tensor.SetSIMD(prev)
		f(t)
	})
	if tensor.SIMDAvailable() {
		t.Run("simd", func(t *testing.T) {
			prev := tensor.SetSIMD(true)
			defer tensor.SetSIMD(prev)
			f(t)
		})
	}
}

// f64Reference computes the per-image float64 softmax rows.
func f64Reference(f backendFixture) [][]float64 {
	a := tensor.NewArena()
	out := make([][]float64, len(f.xs))
	for i, x := range f.xs {
		out[i] = append([]float64(nil), f.net.InferArena(x, a).Data...)
		a.Reset()
	}
	return out
}

func argmax(row []float64) int {
	best, bv := 0, math.Inf(-1)
	for i, v := range row {
		if v > bv {
			best, bv = i, v
		}
	}
	return best
}

// TestCompile32MatchesF64 locks the float32 backend's accuracy contract
// against the float64 reference: for every zoo topology and B ∈ {1, 2, 7,
// 32}, identical argmax on every input and softmax probabilities within
// 1e-6 (ISSUE 5 acceptance bound).
func TestCompile32MatchesF64(t *testing.T) {
	for _, f := range backendFixtures(t) {
		f := f
		t.Run(f.name, func(t *testing.T) {
			withBackendSIMD(t, func(t *testing.T) {
				net32, err := f.net.Compile32()
				if err != nil {
					t.Fatal(err)
				}
				want := f64Reference(f)
				for _, bsz := range []int{1, 2, 7, 32} {
					a := tensor.NewArena32()
					got := net32.InferBatch(f.xs[:bsz], a)
					if len(got) != bsz {
						t.Fatalf("B=%d: got %d rows", bsz, len(got))
					}
					for i, row := range got {
						if w, g := argmax(want[i]), argmax(row); w != g {
							t.Errorf("B=%d image %d: f32 argmax %d != f64 %d", bsz, i, g, w)
						}
						for j := range row {
							if d := math.Abs(row[j] - want[i][j]); d > 1e-6 {
								t.Fatalf("B=%d image %d class %d: |Δsoftmax| = %g > 1e-6", bsz, i, j, d)
							}
						}
					}
					a.Reset()
				}
			})
		})
	}
}

// TestNet32BatchSizeInvariant locks that every batch size runs the same
// fused kernels: row 0 of a B=32 inference matches a B=1 inference of the
// same image — bit-identically on the int8 backend (the integer GEMM is
// blocking-invariant), within f32 rounding on the f32 backend (the FMA
// tile boundaries depend on the batch geometry).
func TestNet32BatchSizeInvariant(t *testing.T) {
	for _, f := range backendFixtures(t)[:2] { // lenet5, convnet
		f := f
		t.Run(f.name, func(t *testing.T) {
			net32, err := f.net.Compile32()
			if err != nil {
				t.Fatal(err)
			}
			net8, err := f.net.CompileInt8(f.xs[:8])
			if err != nil {
				t.Fatal(err)
			}
			for _, net := range []*nn.Net32{net32, net8} {
				a := tensor.NewArena32()
				batch := net.InferBatch(f.xs, a)
				a.Reset()
				single := net.InferBatch(f.xs[:1], a)
				for j := range single[0] {
					if net.Quantized {
						if single[0][j] != batch[0][j] {
							t.Fatalf("int8 class %d: B=1 %v != B=32 row 0 %v (bit-exact required)",
								j, single[0][j], batch[0][j])
						}
					} else if d := math.Abs(single[0][j] - batch[0][j]); d > 1e-6 {
						t.Fatalf("f32 class %d: |Δ| = %g between B=1 and B=32 row 0", j, d)
					}
				}
			}
		})
	}
}

// TestCompileInt8Agreement locks the int8 backend's accuracy contract:
// top-1 agreement with the float64 path of at least 99% aggregated across
// the zoo's topologies at B=32, with every disagreement logged.
func TestCompileInt8Agreement(t *testing.T) {
	total, agree := 0, 0
	for _, f := range backendFixtures(t) {
		net8, err := f.net.CompileInt8(f.xs[:8])
		if err != nil {
			t.Fatal(err)
		}
		if !net8.Quantized {
			t.Fatalf("%s: CompileInt8 returned an unquantized net", f.name)
		}
		want := f64Reference(f)
		got := net8.InferBatch(f.xs, tensor.NewArena32())
		for i, row := range got {
			total++
			if argmax(row) == argmax(want[i]) {
				agree++
			} else {
				t.Logf("%s image %d: int8 argmax %d != f64 %d (f64 row %v)",
					f.name, i, argmax(row), argmax(want[i]), want[i])
			}
			// Probabilities must stay close in absolute terms even where
			// near-ties flip the argmax.
			for j := range row {
				if d := math.Abs(row[j] - want[i][j]); d > 0.05 {
					t.Fatalf("%s image %d class %d: |Δsoftmax| = %g > 0.05", f.name, i, j, d)
				}
			}
		}
	}
	if rate := float64(agree) / float64(total); rate < 0.99 {
		t.Fatalf("int8 top-1 agreement %d/%d = %.4f < 0.99", agree, total, rate)
	}
}

// TestNet32SharedConcurrent hammers one quantized net from several
// goroutines with private arenas — the compiled nets are read-only after
// construction, so concurrent results must match the single-goroutine
// reference exactly (run under -race by the CI race job).
func TestNet32SharedConcurrent(t *testing.T) {
	f := backendFixtures(t)[1] // convnet
	net8, err := f.net.CompileInt8(f.xs[:8])
	if err != nil {
		t.Fatal(err)
	}
	want := net8.InferBatch(f.xs, tensor.NewArena32())

	const goroutines = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := tensor.NewArena32()
			for rep := 0; rep < 3; rep++ {
				got := net8.InferBatch(f.xs, a)
				for i, row := range got {
					for j := range row {
						if row[j] != want[i][j] {
							errs <- fmt.Errorf("image %d class %d: concurrent result diverged", i, j)
							return
						}
					}
				}
				a.Reset()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCompileErrors covers the refusal paths: activation hooks are a
// float64-only contract, and int8 calibration needs data.
func TestCompileErrors(t *testing.T) {
	f := backendFixtures(t)[0]
	f.net.ActivationHook = func(int, *tensor.T) {}
	if _, err := f.net.Compile32(); err == nil {
		t.Error("Compile32 accepted a network with an ActivationHook")
	}
	if _, err := f.net.CompileInt8(f.xs[:4]); err == nil {
		t.Error("CompileInt8 accepted a network with an ActivationHook")
	}
	f.net.ActivationHook = nil
	if _, err := f.net.CompileInt8(nil); err == nil {
		t.Error("CompileInt8 accepted an empty calibration sample")
	}
	if _, err := f.net.CompileInt8([]*tensor.T{f.xs[0], tensor.New(1, 2, 2)}); err == nil {
		t.Error("CompileInt8 accepted mixed calibration shapes")
	}
}

// TestNet32EmptyBatch covers the degenerate entry point.
func TestNet32EmptyBatch(t *testing.T) {
	f := backendFixtures(t)[0]
	net32, err := f.net.Compile32()
	if err != nil {
		t.Fatal(err)
	}
	if out := net32.InferBatch(nil, nil); len(out) != 0 {
		t.Errorf("empty batch returned %d rows", len(out))
	}
	// nil arena allocates a private one.
	got := net32.InferBatch(f.xs[:2], nil)
	want := net32.InferBatch(f.xs[:2], tensor.NewArena32())
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("nil-arena path diverged at image %d class %d", i, j)
			}
		}
	}
}
