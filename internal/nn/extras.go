package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// LeakyReLU applies max(alpha*x, x) element-wise. It is provided for model
// variants whose plain-ReLU training collapses (dying-ReLU regimes).
type LeakyReLU struct {
	Alpha float64

	lastIn *tensor.T
}

var _ Layer = (*LeakyReLU)(nil)
var _ Counter = (*LeakyReLU)(nil)

// NewLeakyReLU creates a LeakyReLU with the given negative slope (0.01 when
// alpha is 0).
func NewLeakyReLU(alpha float64) *LeakyReLU {
	if alpha == 0 {
		alpha = 0.01
	}
	return &LeakyReLU{Alpha: alpha}
}

// Name implements Layer.
func (l *LeakyReLU) Name() string { return fmt.Sprintf("leakyrelu(%g)", l.Alpha) }

// OutShape implements Layer.
func (l *LeakyReLU) OutShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }

// Forward implements Layer.
func (l *LeakyReLU) Forward(x *tensor.T, train bool) *tensor.T {
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = l.Alpha * v
		}
	}
	if train {
		l.lastIn = x
	}
	return out
}

// Backward implements Layer.
func (l *LeakyReLU) Backward(grad *tensor.T) *tensor.T {
	if l.lastIn == nil {
		panic("nn: LeakyReLU.Backward called before Forward(train=true)")
	}
	dx := tensor.New(grad.Shape...)
	for i, v := range l.lastIn.Data {
		if v > 0 {
			dx.Data[i] = grad.Data[i]
		} else {
			dx.Data[i] = l.Alpha * grad.Data[i]
		}
	}
	return dx
}

// Params implements Layer.
func (l *LeakyReLU) Params() []*Param { return nil }

// Stats implements Counter.
func (l *LeakyReLU) Stats(in []int) Stats { return Stats{ActElems: prodShape(in)} }

// Dropout randomly zeroes a fraction of activations during training and
// rescales the survivors (inverted dropout); inference passes values
// through unchanged. The mask RNG is owned by the layer, seeded at
// construction, so training remains reproducible.
type Dropout struct {
	Rate float64

	rng  *rand.Rand
	mask []bool
}

var _ Layer = (*Dropout)(nil)
var _ Counter = (*Dropout)(nil)

// NewDropout creates a dropout layer with the given drop rate in [0, 1).
func NewDropout(rate float64, seed int64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%g)", d.Rate) }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.T, train bool) *tensor.T {
	if !train || d.Rate == 0 {
		return x.Clone()
	}
	out := tensor.New(x.Shape...)
	mask := make([]bool, x.Len())
	scale := 1 / (1 - d.Rate)
	for i, v := range x.Data {
		if d.rng.Float64() >= d.Rate {
			mask[i] = true
			out.Data[i] = v * scale
		}
	}
	d.mask = mask
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.T) *tensor.T {
	if d.mask == nil {
		panic("nn: Dropout.Backward called before Forward(train=true)")
	}
	dx := tensor.New(grad.Shape...)
	scale := 1 / (1 - d.Rate)
	for i, m := range d.mask {
		if m {
			dx.Data[i] = grad.Data[i] * scale
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Stats implements Counter.
func (d *Dropout) Stats(in []int) Stats { return Stats{} }

// Adam is the Adam optimizer (Kingma & Ba) with decoupled weight decay,
// offered as an alternative to SGD for quick experiments; the paper's
// training recipes use SGD with momentum.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	step int
	m    map[*Param]*tensor.T
	v    map[*Param]*tensor.T
}

// NewAdam creates an Adam optimizer with standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.T), v: make(map[*Param]*tensor.T),
	}
}

// Step applies one Adam update using the accumulated gradients scaled by
// 1/batch, then zeroes the gradients.
func (o *Adam) Step(params []*Param, batch int) {
	if batch < 1 {
		batch = 1
	}
	o.step++
	scale := 1.0 / float64(batch)
	bc1 := 1 - math.Pow(o.Beta1, float64(o.step))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.step))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = p.Value.ZerosLike()
			o.m[p] = m
		}
		v, ok := o.v[p]
		if !ok {
			v = p.Value.ZerosLike()
			o.v[p] = v
		}
		wd := 0.0
		if p.Decay {
			wd = o.WeightDecay
		}
		for i := range p.Value.Data {
			g := p.Grad.Data[i]*scale + wd*p.Value.Data[i]
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g*g
			mHat := m.Data[i] / bc1
			vHat := v.Data[i] / bc2
			p.Value.Data[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
			p.Grad.Data[i] = 0
		}
	}
}
