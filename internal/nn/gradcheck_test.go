package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// lossOf runs a forward pass through the layer stack and computes the
// cross-entropy loss against the label — the scalar function whose gradient
// the checks below validate by central differences.
func lossOf(layers []Layer, x *tensor.T, label int, train bool) float64 {
	h := x
	for _, l := range layers {
		h = l.Forward(h, train)
	}
	loss, _ := SoftmaxCrossEntropy(h, label)
	return loss
}

// backwardOf runs forward(train)+backward and returns the input gradient.
func backwardOf(layers []Layer, x *tensor.T, label int) *tensor.T {
	h := x
	for _, l := range layers {
		h = l.Forward(h, true)
	}
	_, g := SoftmaxCrossEntropy(h, label)
	for i := len(layers) - 1; i >= 0; i-- {
		g = layers[i].Backward(g)
	}
	return g
}

// checkGradients validates both input gradients and parameter gradients of a
// layer stack by central finite differences.
func checkGradients(t *testing.T, layers []Layer, x *tensor.T, label int, tol float64) {
	t.Helper()
	const eps = 1e-5

	for _, l := range layers {
		for _, p := range l.Params() {
			p.Grad.Zero()
		}
	}
	analytic := backwardOf(layers, x, label)

	// Input gradient: perturb a sample of input coordinates.
	idxs := sampleIndices(x.Len(), 12)
	for _, i := range idxs {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := lossOf(layers, x, label, false)
		x.Data[i] = orig - eps
		down := lossOf(layers, x, label, false)
		x.Data[i] = orig
		numeric := (up - down) / (2 * eps)
		if diff := math.Abs(numeric - analytic.Data[i]); diff > tol*(1+math.Abs(numeric)) {
			t.Errorf("input grad [%d]: analytic %.6g, numeric %.6g", i, analytic.Data[i], numeric)
		}
	}

	// Parameter gradients.
	for li, l := range layers {
		for pi, p := range l.Params() {
			idxs := sampleIndices(p.Value.Len(), 8)
			for _, i := range idxs {
				orig := p.Value.Data[i]
				p.Value.Data[i] = orig + eps
				up := lossOf(layers, x, label, false)
				p.Value.Data[i] = orig - eps
				down := lossOf(layers, x, label, false)
				p.Value.Data[i] = orig
				numeric := (up - down) / (2 * eps)
				if diff := math.Abs(numeric - p.Grad.Data[i]); diff > tol*(1+math.Abs(numeric)) {
					t.Errorf("layer %d (%s) param %d (%s) grad [%d]: analytic %.6g, numeric %.6g",
						li, l.Name(), pi, p.Name, i, p.Grad.Data[i], numeric)
				}
			}
		}
	}
}

func sampleIndices(n, k int) []int {
	if n <= k {
		idxs := make([]int, n)
		for i := range idxs {
			idxs[i] = i
		}
		return idxs
	}
	rng := rand.New(rand.NewSource(99))
	seen := map[int]bool{}
	var idxs []int
	for len(idxs) < k {
		i := rng.Intn(n)
		if !seen[i] {
			seen[i] = true
			idxs = append(idxs, i)
		}
	}
	return idxs
}

func randInput(rng *rand.Rand, shape ...int) *tensor.T {
	x := tensor.New(shape...)
	x.FillNormal(rng, 0, 1)
	return x
}

func TestGradCheckDense(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	layers := []Layer{NewDense(12, 5, rng)}
	checkGradients(t, layers, randInput(rng, 12), 2, 1e-4)
}

func TestGradCheckConv(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	layers := []Layer{
		NewConv2D(2, 3, 3, 1, 1, rng),
		NewFlatten(),
		NewDense(3*6*6, 4, rng),
	}
	checkGradients(t, layers, randInput(rng, 2, 6, 6), 1, 1e-4)
}

func TestGradCheckConvStride(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	layers := []Layer{
		NewConv2D(1, 2, 3, 2, 1, rng),
		NewFlatten(),
		NewDense(2*4*4, 3, rng),
	}
	checkGradients(t, layers, randInput(rng, 1, 7, 7), 0, 1e-4)
}

func TestGradCheckReLUChain(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	layers := []Layer{
		NewDense(10, 8, rng),
		NewReLU(),
		NewDense(8, 4, rng),
	}
	checkGradients(t, layers, randInput(rng, 10), 1, 1e-4)
}

func TestGradCheckMaxPool(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	layers := []Layer{
		NewConv2D(1, 2, 3, 1, 1, rng),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(2*3*3, 3, rng),
	}
	checkGradients(t, layers, randInput(rng, 1, 6, 6), 2, 1e-4)
}

func TestGradCheckGlobalAvgPool(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	layers := []Layer{
		NewConv2D(2, 4, 3, 1, 1, rng),
		NewGlobalAvgPool(),
		NewDense(4, 3, rng),
	}
	checkGradients(t, layers, randInput(rng, 2, 5, 5), 1, 1e-4)
}

func TestGradCheckResidualBlockIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	// ChannelNorm updates running statistics on every train-mode forward,
	// which perturbs the function between the analytic pass and the finite
	// difference evaluations. The finite-difference passes use train=false,
	// and the analytic pass changes stats only once before gradients are
	// measured, so a slightly looser tolerance absorbs the drift.
	layers := []Layer{
		NewResidualBlock(3, 3, 1, rng),
		NewFlatten(),
		NewDense(3*4*4, 3, rng),
	}
	checkGradients(t, layers, randInput(rng, 3, 4, 4), 1, 2e-2)
}

func TestGradCheckResidualBlockProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	layers := []Layer{
		NewResidualBlock(2, 4, 2, rng),
		NewFlatten(),
		NewDense(4*3*3, 3, rng),
	}
	checkGradients(t, layers, randInput(rng, 2, 6, 6), 0, 2e-2)
}

func TestGradCheckDenseUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	layers := []Layer{
		NewDenseUnit(2, 3, rng),
		NewFlatten(),
		NewDense(5*4*4, 3, rng),
	}
	checkGradients(t, layers, randInput(rng, 2, 4, 4), 1, 2e-2)
}

func TestGradCheckChannelNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	layers := []Layer{
		NewChannelNorm(2),
		NewFlatten(),
		NewDense(2*4*4, 3, rng),
	}
	checkGradients(t, layers, randInput(rng, 2, 4, 4), 1, 2e-2)
}
