package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the cross-entropy loss of a logit vector
// against an integer label, returning the loss and the gradient of the loss
// with respect to the logits (the fused softmax/cross-entropy gradient
// p − onehot(label)).
func SoftmaxCrossEntropy(logits *tensor.T, label int) (loss float64, grad *tensor.T) {
	if label < 0 || label >= logits.Len() {
		panic(fmt.Sprintf("nn: label %d out of range for %d classes", label, logits.Len()))
	}
	probs := Softmax(logits)
	p := probs.Data[label]
	// Clamp to avoid -Inf loss on numerically-zero probabilities.
	loss = -math.Log(math.Max(p, 1e-300))
	grad = probs
	grad.Data[label] -= 1
	return loss, grad
}

// NLL returns the mean negative log-likelihood of probability vectors against
// labels; used by the temperature-scaling calibration optimizer.
func NLL(probs [][]float64, labels []int) float64 {
	if len(probs) != len(labels) {
		panic(fmt.Sprintf("nn: NLL length mismatch: %d probs vs %d labels", len(probs), len(labels)))
	}
	if len(probs) == 0 {
		return 0
	}
	total := 0.0
	for i, pv := range probs {
		total += -math.Log(math.Max(pv[labels[i]], 1e-300))
	}
	return total / float64(len(probs))
}
