package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSoftmaxProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		logits := tensor.New(n)
		logits.FillNormal(r, 0, 3)
		p := Softmax(logits)
		sum := 0.0
		for _, v := range p.Data {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// argmax preserved
		li, _ := logits.MaxIndex()
		pi, _ := p.MaxIndex()
		return li == pi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, 999, 998}, 3)
	p := Softmax(logits)
	if math.IsNaN(p.Data[0]) || math.IsInf(p.Data[0], 0) {
		t.Fatalf("softmax overflowed on large logits: %v", p.Data)
	}
	if i, _ := p.MaxIndex(); i != 0 {
		t.Errorf("argmax = %d, want 0", i)
	}
}

func TestSoftmaxTempBehaviour(t *testing.T) {
	logits := tensor.FromSlice([]float64{2, 1, 0}, 3)
	base := Softmax(logits)
	hot := SoftmaxTemp(logits, 4) // higher temperature flattens
	cold := SoftmaxTemp(logits, 0.25)
	if !(hot.Data[0] < base.Data[0] && base.Data[0] < cold.Data[0]) {
		t.Errorf("temperature ordering violated: hot %.4f base %.4f cold %.4f",
			hot.Data[0], base.Data[0], cold.Data[0])
	}
	one := SoftmaxTemp(logits, 1)
	for i := range one.Data {
		if math.Abs(one.Data[i]-base.Data[i]) > 1e-12 {
			t.Errorf("T=1 should equal softmax")
		}
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.FromSlice([]float64{0, 0, 0}, 3)
	loss, grad := SoftmaxCrossEntropy(logits, 1)
	if math.Abs(loss-math.Log(3)) > 1e-12 {
		t.Errorf("uniform loss = %v, want ln 3", loss)
	}
	wantGrad := []float64{1.0 / 3, 1.0/3 - 1, 1.0 / 3}
	for i, w := range wantGrad {
		if math.Abs(grad.Data[i]-w) > 1e-12 {
			t.Errorf("grad[%d] = %v, want %v", i, grad.Data[i], w)
		}
	}
	// Gradient sums to zero for any logits (softmax grad identity).
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		l := tensor.New(5)
		l.FillNormal(rng, 0, 2)
		_, g := SoftmaxCrossEntropy(l, trial%5)
		if s := g.Sum(); math.Abs(s) > 1e-9 {
			t.Errorf("grad sum = %v, want 0", s)
		}
	}
}

func TestNLL(t *testing.T) {
	probs := [][]float64{{0.5, 0.5}, {0.9, 0.1}}
	labels := []int{0, 0}
	want := (-math.Log(0.5) - math.Log(0.9)) / 2
	if got := NLL(probs, labels); math.Abs(got-want) > 1e-12 {
		t.Errorf("NLL = %v, want %v", got, want)
	}
}

func TestNewNetworkValidatesChaining(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	_, err := NewNetwork([]int{1, 8, 8}, 4,
		NewConv2D(1, 2, 3, 1, 1, rng),
		NewFlatten(),
		NewDense(2*8*8, 4, rng),
	)
	if err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}

	// Channel mismatch must be rejected.
	_, err = NewNetwork([]int{3, 8, 8}, 4,
		NewConv2D(1, 2, 3, 1, 1, rng),
		NewFlatten(),
		NewDense(2*8*8, 4, rng),
	)
	if err == nil {
		t.Fatal("channel-mismatched network accepted")
	}

	// Wrong class count must be rejected.
	_, err = NewNetwork([]int{1, 8, 8}, 10,
		NewConv2D(1, 2, 3, 1, 1, rng),
		NewFlatten(),
		NewDense(2*8*8, 4, rng),
	)
	if err == nil {
		t.Fatal("class-mismatched network accepted")
	}
}

// buildTinyNet returns a small conv net for training tests.
func buildTinyNet(rng *rand.Rand, classes int) *Network {
	return MustNetwork([]int{1, 8, 8}, classes,
		NewConv2D(1, 4, 3, 1, 1, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(4*4*4, classes, rng),
	)
}

// twoBlobSamples builds a trivially separable dataset: class 0 has mass in
// the top-left quadrant, class 1 in the bottom-right.
func twoBlobSamples(rng *rand.Rand, n int) []Sample {
	samples := make([]Sample, n)
	for i := range samples {
		x := tensor.New(1, 8, 8)
		x.FillNormal(rng, 0, 0.1)
		label := i % 2
		if label == 0 {
			for y := 0; y < 4; y++ {
				for xx := 0; xx < 4; xx++ {
					x.Data[y*8+xx] += 1
				}
			}
		} else {
			for y := 4; y < 8; y++ {
				for xx := 4; xx < 8; xx++ {
					x.Data[y*8+xx] += 1
				}
			}
		}
		samples[i] = Sample{X: x, Label: label}
	}
	return samples
}

func TestTrainLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := buildTinyNet(rng, 2)
	samples := twoBlobSamples(rng, 120)
	before := Accuracy(net, samples)
	loss, err := Train(net, samples, TrainConfig{Epochs: 5, BatchSize: 8, LR: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	after := Accuracy(net, samples)
	if after < 0.95 {
		t.Errorf("accuracy after training = %.3f (before %.3f, loss %.4f); want >= 0.95", after, before, loss)
	}
}

func TestTrainIsDeterministic(t *testing.T) {
	run := func() []float64 {
		rng := rand.New(rand.NewSource(24))
		net := buildTinyNet(rng, 2)
		samples := twoBlobSamples(rand.New(rand.NewSource(25)), 40)
		if _, err := Train(net, samples, TrainConfig{Epochs: 2, BatchSize: 4, LR: 0.05, Seed: 7}); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), net.Params()[0].Value.Data...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training not deterministic at weight %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTrainRejectsEmptyDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	net := buildTinyNet(rng, 2)
	if _, err := Train(net, nil, TrainConfig{}); err == nil {
		t.Fatal("Train with no samples should error")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	net := buildTinyNet(rng, 2)
	samples := twoBlobSamples(rng, 20)
	if _, err := Train(net, samples, TrainConfig{Epochs: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}

	net2 := buildTinyNet(rand.New(rand.NewSource(999)), 2)
	if err := net2.LoadParams(&buf); err != nil {
		t.Fatal(err)
	}
	x := samples[0].X
	p1, p2 := net.Infer(x), net2.Infer(x)
	for i := range p1.Data {
		if p1.Data[i] != p2.Data[i] {
			t.Fatalf("restored network differs at output %d: %v vs %v", i, p1.Data[i], p2.Data[i])
		}
	}
}

func TestLoadParamsRejectsMismatchedTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	net := buildTinyNet(rng, 2)
	var buf bytes.Buffer
	if err := net.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	other := MustNetwork([]int{1, 8, 8}, 3,
		NewConv2D(1, 4, 3, 1, 1, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(4*4*4, 3, rng),
	)
	if err := other.LoadParams(&buf); err == nil {
		t.Fatal("loading into mismatched topology should fail")
	}
}

func TestSaveParamsFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	net := buildTinyNet(rng, 2)
	path := t.TempDir() + "/sub/dir/model.gob"
	if err := net.SaveParamsFile(path); err != nil {
		t.Fatal(err)
	}
	net2 := buildTinyNet(rand.New(rand.NewSource(30)), 2)
	if err := net2.LoadParamsFile(path); err != nil {
		t.Fatal(err)
	}
	if net2.LoadParamsFile(path+".missing") == nil {
		t.Fatal("loading missing file should fail")
	}
}

func TestNetworkStats(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net := buildTinyNet(rng, 2)
	total := net.TotalStats()
	// conv: 8*8*4 outputs × 1*3*3 = 2304 MACs; dense: 64×2 = 128.
	wantMACs := 8*8*4*9 + 64*2
	if total.MACs != wantMACs {
		t.Errorf("TotalStats MACs = %d, want %d", total.MACs, wantMACs)
	}
	if total.ParamElems != net.NumParams() {
		t.Errorf("ParamElems = %d, NumParams = %d; want equal", total.ParamElems, net.NumParams())
	}
	if got := len(net.LayerStats()); got != len(net.Layers) {
		t.Errorf("LayerStats len = %d, want %d", got, len(net.Layers))
	}
}

func TestActivationHookAppliedInInferenceOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	net := buildTinyNet(rng, 2)
	calls := 0
	net.ActivationHook = func(layer int, x *tensor.T) { calls++ }
	x := tensor.New(1, 8, 8)
	x.FillNormal(rng, 0, 1)
	net.Forward(x, false)
	if calls != len(net.Layers) {
		t.Errorf("hook called %d times in inference, want %d", calls, len(net.Layers))
	}
	calls = 0
	net.Forward(x, true)
	if calls != 0 {
		t.Errorf("hook called %d times in training, want 0", calls)
	}
}

func TestSGDMomentumAndDecay(t *testing.T) {
	// One parameter, constant gradient 1: with momentum 0 and lr 0.1 the
	// value decreases by 0.1 per step; weight decay pulls further.
	p := newParam("w", tensor.FromSlice([]float64{1}, 1), true)
	opt := NewSGD(0.1, 0)
	opt.WeightDecay = 0.5
	p.Grad.Data[0] = 1
	opt.Step([]*Param{p}, 1)
	want := 1 - 0.1*(1+0.5*1)
	if math.Abs(p.Value.Data[0]-want) > 1e-12 {
		t.Errorf("after step: %v, want %v", p.Value.Data[0], want)
	}
	if p.Grad.Data[0] != 0 {
		t.Error("gradient not cleared after step")
	}

	// Bias (Decay=false) must not be decayed.
	b := newParam("b", tensor.FromSlice([]float64{1}, 1), false)
	b.Grad.Data[0] = 0
	opt.Step([]*Param{b}, 1)
	if b.Value.Data[0] != 1 {
		t.Errorf("bias decayed: %v", b.Value.Data[0])
	}
}

func TestSGDClipNorm(t *testing.T) {
	p := newParam("w", tensor.FromSlice([]float64{0, 0}, 2), false)
	opt := NewSGD(1, 0)
	opt.ClipNorm = 1
	p.Grad.Data[0], p.Grad.Data[1] = 30, 40 // norm 50 → scaled to 1
	opt.Step([]*Param{p}, 1)
	wantNorm := 1.0
	gotNorm := math.Hypot(p.Value.Data[0], p.Value.Data[1])
	if math.Abs(gotNorm-wantNorm) > 1e-9 {
		t.Errorf("update norm = %v, want %v", gotNorm, wantNorm)
	}
}

func TestInferAllAndLogitsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	net := buildTinyNet(rng, 2)
	samples := twoBlobSamples(rng, 6)
	probs := InferAll(net, samples)
	logits := LogitsAll(net, samples)
	if len(probs) != 6 || len(logits) != 6 {
		t.Fatalf("lengths: %d, %d", len(probs), len(logits))
	}
	for i := range probs {
		fromLogits := Softmax(tensor.FromSlice(logits[i], len(logits[i])))
		for j := range probs[i] {
			if math.Abs(probs[i][j]-fromLogits.Data[j]) > 1e-12 {
				t.Fatalf("sample %d: InferAll disagrees with softmax(LogitsAll)", i)
			}
		}
	}
}
