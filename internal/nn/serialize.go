package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// snapshot is the on-disk representation of a network's parameters. The
// topology itself is rebuilt from code (the model zoo), so only weights and
// their shapes are persisted; shapes guard against loading into a mismatched
// topology.
type snapshot struct {
	Params []paramBlob
	// States holds non-trainable layer state (normalization running
	// statistics), in Network.StateTensors order.
	States [][]float64
}

type paramBlob struct {
	Name  string
	Shape []int
	Data  []float64
}

// SaveParams writes the network parameters and state to w in gob format.
func (n *Network) SaveParams(w io.Writer) error {
	var s snapshot
	for _, p := range n.Params() {
		s.Params = append(s.Params, paramBlob{
			Name:  p.Name,
			Shape: append([]int(nil), p.Value.Shape...),
			Data:  append([]float64(nil), p.Value.Data...),
		})
	}
	for _, st := range n.StateTensors() {
		s.States = append(s.States, append([]float64(nil), st.Data...))
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("nn: encoding parameters: %w", err)
	}
	return nil
}

// LoadParams reads parameters written by SaveParams into the network. The
// network must have an identical topology (same parameter order and shapes).
func (n *Network) LoadParams(r io.Reader) error {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return fmt.Errorf("nn: decoding parameters: %w", err)
	}
	params := n.Params()
	if len(params) != len(s.Params) {
		return fmt.Errorf("nn: snapshot has %d parameters, network has %d", len(s.Params), len(params))
	}
	for i, p := range params {
		blob := s.Params[i]
		if p.Value.Len() != len(blob.Data) {
			return fmt.Errorf("nn: parameter %d (%s): snapshot %v does not fit %v",
				i, p.Name, blob.Shape, p.Value.Shape)
		}
		copy(p.Value.Data, blob.Data)
	}
	states := n.StateTensors()
	if len(states) != len(s.States) {
		return fmt.Errorf("nn: snapshot has %d state tensors, network has %d", len(s.States), len(states))
	}
	for i, st := range states {
		if st.Len() != len(s.States[i]) {
			return fmt.Errorf("nn: state tensor %d: snapshot len %d does not fit %d",
				i, len(s.States[i]), st.Len())
		}
		copy(st.Data, s.States[i])
	}
	return nil
}

// SaveParamsFile writes the parameters atomically to path, creating parent
// directories as needed.
func (n *Network) SaveParamsFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("nn: creating snapshot dir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return fmt.Errorf("nn: creating snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := n.SaveParams(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("nn: closing snapshot temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("nn: committing snapshot: %w", err)
	}
	return nil
}

// LoadParamsFile reads parameters from path.
func (n *Network) LoadParamsFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("nn: opening snapshot: %w", err)
	}
	defer f.Close()
	return n.LoadParams(f)
}
