package nn

import (
	"repro/internal/tensor"
)

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	mask []bool
}

var _ Layer = (*ReLU)(nil)
var _ Counter = (*ReLU)(nil)

// NewReLU creates a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.T, train bool) *tensor.T {
	out := tensor.New(x.Shape...)
	var mask []bool
	if train {
		mask = make([]bool, x.Len())
	}
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			if train {
				mask[i] = true
			}
		}
	}
	if train {
		r.mask = mask
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.T) *tensor.T {
	if r.mask == nil {
		panic("nn: ReLU.Backward called before Forward(train=true)")
	}
	dx := tensor.New(grad.Shape...)
	for i, m := range r.mask {
		if m {
			dx.Data[i] = grad.Data[i]
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Stats implements Counter.
func (r *ReLU) Stats(in []int) Stats { return Stats{ActElems: prodShape(in)} }

// Flatten reshapes any input to a flat vector.
type Flatten struct {
	inShape []int
}

var _ Layer = (*Flatten)(nil)
var _ Counter = (*Flatten)(nil)

// NewFlatten creates a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) ([]int, error) { return []int{prodShape(in)}, nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.T, train bool) *tensor.T {
	if train {
		f.inShape = append([]int(nil), x.Shape...)
	}
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.T) *tensor.T {
	if f.inShape == nil {
		panic("nn: Flatten.Backward called before Forward(train=true)")
	}
	return grad.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Stats implements Counter.
func (f *Flatten) Stats(in []int) Stats { return Stats{} }

// Softmax converts a logit vector into a probability distribution. Numerical
// stability is obtained by subtracting the max logit before exponentiation.
// Softmax is exposed as a function rather than a Layer: training uses the
// fused softmax cross-entropy in loss.go, and inference applies Softmax to
// the final network output.
func Softmax(logits *tensor.T) *tensor.T {
	return softmaxInto(tensor.New(logits.Shape...), logits)
}

// SoftmaxTemp applies temperature-scaled softmax: softmax(logits / T).
// Temperature T=1 reproduces Softmax; T>1 softens the distribution. Used by
// the calibration experiments (paper §IV-E).
func SoftmaxTemp(logits *tensor.T, temp float64) *tensor.T {
	scaled := logits.Clone()
	scaled.Scale(1 / temp)
	return Softmax(scaled)
}
