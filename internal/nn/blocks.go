package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// ResidualBlock is a two-convolution residual unit:
//
//	y = ReLU( norm2(conv2( ReLU(norm1(conv1(x))) )) + proj(x) )
//
// proj is the identity when the input and output shapes match, and a strided
// 1×1 convolution otherwise (the ResNet "option B" projection shortcut).
type ResidualBlock struct {
	conv1, conv2 *Conv2D
	norm1, norm2 *ChannelNorm
	relu1        *ReLU
	proj         *Conv2D // nil for identity shortcut
	outRelu      *ReLU

	lastSum *tensor.T
}

var _ Layer = (*ResidualBlock)(nil)
var _ Counter = (*ResidualBlock)(nil)

// NewResidualBlock creates a residual block mapping inC channels to outC
// channels, downsampling spatially by stride, with channel normalization
// after each convolution.
func NewResidualBlock(inC, outC, stride int, rng *rand.Rand) *ResidualBlock {
	return newResidualBlock(inC, outC, stride, true, rng)
}

// NewPlainResidualBlock creates a residual block without normalization
// layers. The per-sample EMA normalization substitute can destabilize long
// chains of residual blocks, so the deeper zoo models use plain blocks with
// down-scaled second-conv initialization instead.
func NewPlainResidualBlock(inC, outC, stride int, rng *rand.Rand) *ResidualBlock {
	return newResidualBlock(inC, outC, stride, false, rng)
}

func newResidualBlock(inC, outC, stride int, norm bool, rng *rand.Rand) *ResidualBlock {
	b := &ResidualBlock{
		conv1:   NewConv2D(inC, outC, 3, stride, 1, rng),
		relu1:   NewReLU(),
		conv2:   NewConv2D(outC, outC, 3, 1, 1, rng),
		outRelu: NewReLU(),
	}
	if norm {
		b.norm1 = NewChannelNorm(outC)
		b.norm2 = NewChannelNorm(outC)
	} else {
		// Scale down the residual branch output at init so each block starts
		// near-identity, the standard normalization-free residual trick.
		b.conv2.weight.Value.Scale(0.5)
	}
	if inC != outC || stride != 1 {
		b.proj = NewConv2D(inC, outC, 1, stride, 0, rng)
	}
	return b
}

// Name implements Layer.
func (b *ResidualBlock) Name() string {
	return fmt.Sprintf("resblock(%d->%d,s%d)", b.conv1.InC, b.conv1.OutC, b.conv1.Stride)
}

// OutShape implements Layer.
func (b *ResidualBlock) OutShape(in []int) ([]int, error) {
	s1, err := b.conv1.OutShape(in)
	if err != nil {
		return nil, err
	}
	s2, err := b.conv2.OutShape(s1)
	if err != nil {
		return nil, err
	}
	if b.proj != nil {
		sp, err := b.proj.OutShape(in)
		if err != nil {
			return nil, err
		}
		if !shapeEq(sp, s2) {
			return nil, fmt.Errorf("nn: %s: shortcut shape %v != main path %v", b.Name(), sp, s2)
		}
	} else if !shapeEq(in, s2) {
		return nil, fmt.Errorf("nn: %s: identity shortcut shape %v != main path %v", b.Name(), in, s2)
	}
	return s2, nil
}

// Forward implements Layer.
func (b *ResidualBlock) Forward(x *tensor.T, train bool) *tensor.T {
	h := b.conv1.Forward(x, train)
	if b.norm1 != nil {
		h = b.norm1.Forward(h, train)
	}
	h = b.relu1.Forward(h, train)
	h = b.conv2.Forward(h, train)
	if b.norm2 != nil {
		h = b.norm2.Forward(h, train)
	}

	var shortcut *tensor.T
	if b.proj != nil {
		shortcut = b.proj.Forward(x, train)
	} else {
		shortcut = x
	}
	h.AddInPlace(shortcut)
	out := b.outRelu.Forward(h, train)
	if train {
		b.lastSum = h
	}
	return out
}

// Backward implements Layer.
func (b *ResidualBlock) Backward(grad *tensor.T) *tensor.T {
	g := b.outRelu.Backward(grad)
	// g is the gradient of both the main path output and the shortcut.
	dMain := g
	if b.norm2 != nil {
		dMain = b.norm2.Backward(dMain)
	}
	dMain = b.conv2.Backward(dMain)
	dMain = b.relu1.Backward(dMain)
	if b.norm1 != nil {
		dMain = b.norm1.Backward(dMain)
	}
	dx := b.conv1.Backward(dMain)
	if b.proj != nil {
		dx.AddInPlace(b.proj.Backward(g))
	} else {
		dx.AddInPlace(g)
	}
	return dx
}

// Params implements Layer.
func (b *ResidualBlock) Params() []*Param {
	ps := append([]*Param(nil), b.conv1.Params()...)
	if b.norm1 != nil {
		ps = append(ps, b.norm1.Params()...)
	}
	ps = append(ps, b.conv2.Params()...)
	if b.norm2 != nil {
		ps = append(ps, b.norm2.Params()...)
	}
	if b.proj != nil {
		ps = append(ps, b.proj.Params()...)
	}
	return ps
}

// StateTensors implements Stateful, forwarding the normalization state of
// the block's sub-layers.
func (b *ResidualBlock) StateTensors() []*tensor.T {
	var ts []*tensor.T
	if b.norm1 != nil {
		ts = append(ts, b.norm1.StateTensors()...)
	}
	if b.norm2 != nil {
		ts = append(ts, b.norm2.StateTensors()...)
	}
	return ts
}

// Stats implements Counter.
func (b *ResidualBlock) Stats(in []int) Stats {
	s1, _ := b.conv1.OutShape(in)
	st := b.conv1.Stats(in)
	if b.norm1 != nil {
		st = addStats(st, b.norm1.Stats(s1))
	}
	st = addStats(st, b.conv2.Stats(s1))
	if b.norm2 != nil {
		s2, _ := b.conv2.OutShape(s1)
		st = addStats(st, b.norm2.Stats(s2))
	}
	if b.proj != nil {
		st = addStats(st, b.proj.Stats(in))
	}
	return st
}

func addStats(a, b Stats) Stats {
	return Stats{
		MACs:       a.MACs + b.MACs,
		ParamElems: a.ParamElems + b.ParamElems,
		ActElems:   a.ActElems + b.ActElems,
	}
}

// DenseUnit is a DenseNet-style growth unit: the input is passed through a
// conv-norm-ReLU branch producing `growth` new channels, and the output is
// the channel-wise concatenation [x, branch(x)].
type DenseUnit struct {
	conv *Conv2D
	norm *ChannelNorm
	relu *ReLU

	inC int
}

var _ Layer = (*DenseUnit)(nil)
var _ Counter = (*DenseUnit)(nil)

// NewDenseUnit creates a dense growth unit adding `growth` channels to inC
// input channels.
func NewDenseUnit(inC, growth int, rng *rand.Rand) *DenseUnit {
	return &DenseUnit{
		conv: NewConv2D(inC, growth, 3, 1, 1, rng),
		norm: NewChannelNorm(growth),
		relu: NewReLU(),
		inC:  inC,
	}
}

// Name implements Layer.
func (u *DenseUnit) Name() string {
	return fmt.Sprintf("denseunit(%d+%d)", u.inC, u.conv.OutC)
}

// OutShape implements Layer.
func (u *DenseUnit) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != u.inC {
		return nil, shapeErr(u.Name(), in, fmt.Sprintf("[%d H W]", u.inC))
	}
	bs, err := u.conv.OutShape(in)
	if err != nil {
		return nil, err
	}
	return []int{in[0] + bs[0], in[1], in[2]}, nil
}

// Forward implements Layer.
func (u *DenseUnit) Forward(x *tensor.T, train bool) *tensor.T {
	branch := u.conv.Forward(x, train)
	branch = u.norm.Forward(branch, train)
	branch = u.relu.Forward(branch, train)

	h, w := x.Shape[1], x.Shape[2]
	out := tensor.New(x.Shape[0]+branch.Shape[0], h, w)
	copy(out.Data[:x.Len()], x.Data)
	copy(out.Data[x.Len():], branch.Data)
	return out
}

// Backward implements Layer.
func (u *DenseUnit) Backward(grad *tensor.T) *tensor.T {
	h, w := grad.Shape[1], grad.Shape[2]
	nIn := u.inC * h * w
	dxDirect := tensor.FromSlice(append([]float64(nil), grad.Data[:nIn]...), u.inC, h, w)
	gBranch := tensor.FromSlice(append([]float64(nil), grad.Data[nIn:]...), grad.Shape[0]-u.inC, h, w)

	db := u.relu.Backward(gBranch)
	db = u.norm.Backward(db)
	db = u.conv.Backward(db)
	dxDirect.AddInPlace(db)
	return dxDirect
}

// Params implements Layer.
func (u *DenseUnit) Params() []*Param {
	return append(u.conv.Params(), u.norm.Params()...)
}

// StateTensors implements Stateful.
func (u *DenseUnit) StateTensors() []*tensor.T { return u.norm.StateTensors() }

// Stats implements Counter.
func (u *DenseUnit) Stats(in []int) Stats {
	bs, _ := u.conv.OutShape(in)
	st := addStats(u.conv.Stats(in), u.norm.Stats(bs))
	st.ActElems += prodShape(in) // concat copies the input forward
	return st
}
