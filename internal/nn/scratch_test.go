package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// arenaTestNet covers every layer with an arena fast path: conv, channel
// norm, relus, residual block, dense unit, both poolings, dropout, flatten,
// dense.
func arenaTestNet(rng *rand.Rand) *Network {
	return MustNetwork([]int{3, 8, 8}, 5,
		NewConv2D(3, 4, 3, 1, 1, rng),
		NewChannelNorm(4),
		NewReLU(),
		NewResidualBlock(4, 4, 1, rng),
		NewDenseUnit(4, 2, rng),
		NewMaxPool2D(2),
		NewLeakyReLU(0.1),
		NewDropout(0.3, 7),
		NewGlobalAvgPool(),
		NewFlatten(),
		NewDense(6, 5, rng),
	)
}

// TestInferArenaMatchesInfer locks down the contract stated at the top of
// scratch.go: the arena path is bit-identical to the allocating path — not
// merely close, since core's staged decisions are threshold comparisons
// where any drift could flip a vote.
func TestInferArenaMatchesInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := arenaTestNet(rng)
	a := tensor.NewArena()
	for trial := 0; trial < 20; trial++ {
		x := tensor.New(3, 8, 8)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		want := net.Infer(x)
		got := net.InferArena(x, a)
		if len(got.Data) != len(want.Data) {
			t.Fatalf("trial %d: arena output len %d, want %d", trial, len(got.Data), len(want.Data))
		}
		for i := range want.Data {
			if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
				t.Fatalf("trial %d: prob[%d] differs: infer=%v arena=%v",
					trial, i, want.Data[i], got.Data[i])
			}
		}
		// Recycle between inferences, as ClassifyBatch workers do.
		a.Reset()
	}
	if a.Live() != 0 {
		t.Errorf("arena leaked %d live tensors", a.Live())
	}
}

// TestInferArenaNilFallsBack checks a nil arena degrades to plain Infer.
func TestInferArenaNilFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := arenaTestNet(rng)
	x := tensor.New(3, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	want := net.Infer(x)
	got := net.InferArena(x, nil)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("nil-arena prob[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestInferArenaDoesNotMutateInput guards the read-only inference contract
// the concurrency layer depends on.
func TestInferArenaDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := arenaTestNet(rng)
	a := tensor.NewArena()
	x := tensor.New(3, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	orig := append([]float64(nil), x.Data...)
	net.InferArena(x, a)
	for i, v := range x.Data {
		if v != orig[i] {
			t.Fatalf("InferArena mutated input at %d: %v -> %v", i, orig[i], v)
		}
	}
}
