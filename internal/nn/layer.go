// Package nn is a from-scratch convolutional neural network framework:
// layers, forward/backward propagation, softmax cross-entropy loss, and
// SGD training. It substitutes for the Caffe/cuDNN stack used by the
// PolygraphMR paper (DESIGN.md §1): the reliability machinery only consumes
// the softmax vector of each member CNN, so any correct trainable CNN stack
// exercises the same code paths.
//
// Layers are stateful only during training: Forward with train=true caches
// what Backward needs, and Backward accumulates parameter gradients in
// place, so a Network must not be shared across goroutines while training.
// Inference is read-only by contract: Forward with train=false (and the
// arena path InferArena) must not mutate layer state, parameters, or the
// input tensor, which makes Network.Infer/InferArena safe for concurrent
// use on a single shared *Network. The race tests in internal/core exercise
// this guarantee under -race; any new layer must preserve it.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Layer is a differentiable network stage.
type Layer interface {
	// Name returns a short identifier used in serialization and debugging.
	Name() string
	// OutShape returns the output shape for the given input shape. It is
	// also used at build time to validate layer chaining.
	OutShape(in []int) ([]int, error)
	// Forward computes the layer output. When train is true the layer
	// caches intermediate state for a subsequent Backward call.
	Forward(x *tensor.T, train bool) *tensor.T
	// Backward consumes the gradient of the loss w.r.t. this layer's
	// output, accumulates gradients into the layer parameters, and returns
	// the gradient w.r.t. the layer input. It must only be called after a
	// Forward with train=true.
	Backward(grad *tensor.T) *tensor.T
	// Params returns the trainable parameters, in a stable order.
	Params() []*Param
}

// Param is one trainable parameter tensor together with its accumulated
// gradient.
type Param struct {
	Name  string
	Value *tensor.T
	Grad  *tensor.T
	// Decay marks the parameter as subject to weight decay (biases and
	// normalization scales typically are not).
	Decay bool
}

// newParam allocates a parameter with a zeroed gradient of matching shape.
func newParam(name string, value *tensor.T, decay bool) *Param {
	return &Param{Name: name, Value: value, Grad: value.ZerosLike(), Decay: decay}
}

// Stats summarizes the computational footprint of one layer, consumed by the
// analytical performance model (internal/perf).
type Stats struct {
	// MACs is the number of multiply-accumulate operations per inference.
	MACs int
	// ParamElems is the number of weight elements that must be loaded.
	ParamElems int
	// ActElems is the number of output activation elements stored.
	ActElems int
}

// Counter is implemented by layers that can report their computational
// footprint for a given input shape.
type Counter interface {
	Stats(in []int) Stats
}

// Stateful is implemented by layers carrying non-trainable state (e.g.
// normalization running statistics) that must survive serialization. The
// returned tensors alias the live state so loads update the layer in place.
type Stateful interface {
	StateTensors() []*tensor.T
}

// heInit fills w with He-normal initialization for the given fan-in, the
// standard choice for ReLU networks.
func heInit(w *tensor.T, fanIn int, rng *rand.Rand) {
	w.FillNormal(rng, 0, math.Sqrt(2.0/float64(fanIn)))
}

// xavierInit fills w with Xavier/Glorot-normal initialization.
func xavierInit(w *tensor.T, fanIn, fanOut int, rng *rand.Rand) {
	w.FillNormal(rng, 0, math.Sqrt(2.0/float64(fanIn+fanOut)))
}

// prodShape multiplies shape dimensions.
func prodShape(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// shapeEq reports whether two shapes are identical.
func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func shapeErr(layer string, in []int, want string) error {
	return fmt.Errorf("nn: %s: unsupported input shape %v (want %s)", layer, in, want)
}
