package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ChannelNorm normalizes each channel of a [C,H,W] input by running
// (exponential-moving-average) statistics and applies a learned per-channel
// scale and shift.
//
// It substitutes for batch normalization: this framework trains one sample
// at a time (batch statistics are unavailable), so normalization uses EMA
// statistics in both training and inference, updated from each training
// sample. Gradients treat the statistics as constants — a standard
// "batch-free normalization" approximation that stabilizes the deeper
// residual and dense topologies in the model zoo.
type ChannelNorm struct {
	C        int
	Momentum float64 // EMA update rate for running statistics
	Eps      float64

	gamma *Param // [C]
	beta  *Param // [C]

	// Running statistics are model state (not trainable parameters): they
	// are updated by Forward in train mode and serialized via StateTensors.
	runMean []float64
	runVar  []float64

	lastXHat *tensor.T
	lastStd  []float64
}

var _ Layer = (*ChannelNorm)(nil)
var _ Counter = (*ChannelNorm)(nil)

// NewChannelNorm creates a normalization layer for c channels.
func NewChannelNorm(c int) *ChannelNorm {
	g := tensor.New(c)
	g.Fill(1)
	n := &ChannelNorm{
		C: c, Momentum: 0.1, Eps: 1e-5,
		gamma:   newParam("gamma", g, false),
		beta:    newParam("beta", tensor.New(c), false),
		runMean: make([]float64, c),
		runVar:  make([]float64, c),
	}
	for i := range n.runVar {
		n.runVar[i] = 1
	}
	return n
}

// Name implements Layer.
func (n *ChannelNorm) Name() string { return fmt.Sprintf("channelnorm(%d)", n.C) }

// OutShape implements Layer.
func (n *ChannelNorm) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != n.C {
		return nil, shapeErr(n.Name(), in, fmt.Sprintf("[%d H W]", n.C))
	}
	return append([]int(nil), in...), nil
}

// Forward implements Layer.
func (n *ChannelNorm) Forward(x *tensor.T, train bool) *tensor.T {
	hw := x.Shape[1] * x.Shape[2]
	out := tensor.New(x.Shape...)
	var xhat *tensor.T
	var stds []float64
	if train {
		xhat = tensor.New(x.Shape...)
		stds = make([]float64, n.C)
	}
	for c := 0; c < n.C; c++ {
		row := x.Data[c*hw : (c+1)*hw]
		if train {
			// Update EMA statistics from this sample's channel stats.
			mean, variance := momentsOf(row)
			m := n.Momentum
			n.runMean[c] = (1-m)*n.runMean[c] + m*mean
			n.runVar[c] = (1-m)*n.runVar[c] + m*variance
		}
		std := math.Sqrt(n.runVar[c] + n.Eps)
		g, b, mu := n.gamma.Value.Data[c], n.beta.Value.Data[c], n.runMean[c]
		orow := out.Data[c*hw : (c+1)*hw]
		for i, v := range row {
			h := (v - mu) / std
			orow[i] = g*h + b
			if train {
				xhat.Data[c*hw+i] = h
			}
		}
		if train {
			stds[c] = std
		}
	}
	if train {
		n.lastXHat = xhat
		n.lastStd = stds
	}
	return out
}

// Backward implements Layer.
func (n *ChannelNorm) Backward(grad *tensor.T) *tensor.T {
	if n.lastXHat == nil {
		panic("nn: ChannelNorm.Backward called before Forward(train=true)")
	}
	hw := grad.Shape[1] * grad.Shape[2]
	dx := tensor.New(grad.Shape...)
	for c := 0; c < n.C; c++ {
		g := n.gamma.Value.Data[c]
		scale := g / n.lastStd[c]
		var dg, db float64
		grow := grad.Data[c*hw : (c+1)*hw]
		hrow := n.lastXHat.Data[c*hw : (c+1)*hw]
		drow := dx.Data[c*hw : (c+1)*hw]
		for i, gv := range grow {
			dg += gv * hrow[i]
			db += gv
			drow[i] = gv * scale
		}
		n.gamma.Grad.Data[c] += dg
		n.beta.Grad.Data[c] += db
	}
	return dx
}

// Params implements Layer.
func (n *ChannelNorm) Params() []*Param { return []*Param{n.gamma, n.beta} }

// StateTensors implements Stateful: the running statistics must round-trip
// through serialization for inference to match the trained model.
func (n *ChannelNorm) StateTensors() []*tensor.T {
	return []*tensor.T{
		{Shape: []int{n.C}, Data: n.runMean},
		{Shape: []int{n.C}, Data: n.runVar},
	}
}

// Stats implements Counter.
func (n *ChannelNorm) Stats(in []int) Stats {
	return Stats{ParamElems: 2 * n.C, ActElems: prodShape(in)}
}

// momentsOf returns the mean and (population) variance of xs.
func momentsOf(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	return mean, variance
}
