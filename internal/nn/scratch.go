package nn

import (
	"repro/internal/tensor"

	"math"
)

// This file implements the allocation-free inference path: every built-in
// layer knows how to run its (read-only) forward computation with
// temporaries drawn from a tensor.Arena instead of the heap. The numerical
// results are bit-identical to Forward(x, false); only the allocation
// strategy differs (verified by TestInferArenaMatchesInfer).
//
// The arena path exists because batched classification (core.ClassifyBatch)
// runs millions of forward passes whose intermediate activations are
// immediately garbage; recycling them per worker removes almost all
// allocations from the hot loop.

// arenaForwarder is implemented by layers that support arena-backed
// inference. The method must behave exactly like Forward(x, false) except
// that temporaries (including the returned tensor) may come from a. Layers
// outside this package fall back to Forward via forwardInfer.
type arenaForwarder interface {
	forwardArena(x *tensor.T, a *tensor.Arena) *tensor.T
}

// forwardInfer runs one layer in inference mode, using the arena path when
// the layer supports it.
func forwardInfer(l Layer, x *tensor.T, a *tensor.Arena) *tensor.T {
	if af, ok := l.(arenaForwarder); ok {
		return af.forwardArena(x, a)
	}
	return l.Forward(x, false)
}

// InferArena runs inference with every intermediate tensor drawn from the
// arena and returns the softmax probability vector. The returned tensor is
// owned by the arena: callers must copy anything they keep before calling
// a.Reset(). A nil arena falls back to Infer.
//
// Like Infer, this path never mutates network state and is safe for
// concurrent use on a shared *Network — but the arena itself is single-
// goroutine, so each worker must own its own arena.
func (n *Network) InferArena(x *tensor.T, a *tensor.Arena) *tensor.T {
	if a == nil {
		return n.Infer(x)
	}
	h := x
	for i, l := range n.Layers {
		h = forwardInfer(l, h, a)
		if n.ActivationHook != nil {
			n.ActivationHook(i, h)
		}
	}
	return softmaxInto(a.New(h.Shape...), h)
}

// softmaxInto writes softmax(logits) into out (same algorithm as Softmax).
func softmaxInto(out, logits *tensor.T) *tensor.T {
	_, maxV := logits.MaxIndex()
	sum := 0.0
	for i, v := range logits.Data {
		e := math.Exp(v - maxV)
		out.Data[i] = e
		sum += e
	}
	if sum == 0 {
		// Degenerate logits (all -Inf); fall back to uniform.
		u := 1.0 / float64(out.Len())
		out.Fill(u)
		return out
	}
	inv := 1.0 / sum
	for i := range out.Data {
		out.Data[i] *= inv
	}
	return out
}

// forwardArena implements arenaForwarder for Conv2D.
func (c *Conv2D) forwardArena(x *tensor.T, a *tensor.Arena) *tensor.T {
	g := c.geometry(x.Shape)
	oh, ow := g.OutH(), g.OutW()
	cols := a.New(c.InC*c.KH*c.KW, oh*ow)
	tensor.Im2Col(cols, x, g)

	out := a.New(c.OutC, oh*ow)
	tensor.MatMulInto(out, c.weight.Value, cols)
	if s := a.Abft(); s != nil {
		s.Record(tensor.VerifyGemm(out, c.weight.Value, cols))
	}
	for oc := 0; oc < c.OutC; oc++ {
		b := c.bias.Value.Data[oc]
		row := out.Data[oc*oh*ow : (oc+1)*oh*ow]
		for i := range row {
			row[i] += b
		}
	}
	return out.Reshape(c.OutC, oh, ow)
}

// forwardArena implements arenaForwarder for Dense.
func (d *Dense) forwardArena(x *tensor.T, a *tensor.Arena) *tensor.T {
	out := a.New(d.Out)
	wd := d.weight.Value.Data
	for o := 0; o < d.Out; o++ {
		row := wd[o*d.In : (o+1)*d.In]
		s := d.bias.Value.Data[o]
		for i, v := range x.Data {
			s += row[i] * v
		}
		out.Data[o] = s
	}
	if s := a.Abft(); s != nil {
		s.Record(tensor.VerifyMatVec(out.Data, wd, x.Data, d.bias.Value.Data, d.Out, d.In))
	}
	return out
}

// forwardArena implements arenaForwarder for ReLU.
func (r *ReLU) forwardArena(x *tensor.T, a *tensor.Arena) *tensor.T {
	out := a.New(x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// forwardArena implements arenaForwarder for LeakyReLU.
func (l *LeakyReLU) forwardArena(x *tensor.T, a *tensor.Arena) *tensor.T {
	out := a.New(x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = l.Alpha * v
		}
	}
	return out
}

// forwardArena implements arenaForwarder for Flatten.
func (f *Flatten) forwardArena(x *tensor.T, _ *tensor.Arena) *tensor.T {
	return x.Reshape(x.Len())
}

// forwardArena implements arenaForwarder for MaxPool2D.
func (p *MaxPool2D) forwardArena(x *tensor.T, a *tensor.Arena) *tensor.T {
	ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	out := a.New(ch, h/p.K, w/p.K)
	maxPoolInto(out.Data, x.Data, ch, h, w, p.K)
	return out
}

// forwardArena implements arenaForwarder for AvgPool2D.
func (p *AvgPool2D) forwardArena(x *tensor.T, a *tensor.Arena) *tensor.T {
	ch, hw := x.Shape[0], x.Shape[1]*x.Shape[2]
	out := a.New(ch)
	for c := 0; c < ch; c++ {
		s := 0.0
		for _, v := range x.Data[c*hw : (c+1)*hw] {
			s += v
		}
		out.Data[c] = s / float64(hw)
	}
	return out
}

// forwardArena implements arenaForwarder for ChannelNorm.
func (n *ChannelNorm) forwardArena(x *tensor.T, a *tensor.Arena) *tensor.T {
	hw := x.Shape[1] * x.Shape[2]
	out := a.New(x.Shape...)
	for c := 0; c < n.C; c++ {
		row := x.Data[c*hw : (c+1)*hw]
		std := math.Sqrt(n.runVar[c] + n.Eps)
		g, b, mu := n.gamma.Value.Data[c], n.beta.Value.Data[c], n.runMean[c]
		orow := out.Data[c*hw : (c+1)*hw]
		for i, v := range row {
			orow[i] = g*(v-mu)/std + b
		}
	}
	return out
}

// forwardArena implements arenaForwarder for Dropout (inference is a copy).
func (d *Dropout) forwardArena(x *tensor.T, a *tensor.Arena) *tensor.T {
	out := a.New(x.Shape...)
	copy(out.Data, x.Data)
	return out
}

// forwardArena implements arenaForwarder for ResidualBlock.
func (b *ResidualBlock) forwardArena(x *tensor.T, a *tensor.Arena) *tensor.T {
	h := b.conv1.forwardArena(x, a)
	if b.norm1 != nil {
		h = b.norm1.forwardArena(h, a)
	}
	h = b.relu1.forwardArena(h, a)
	h = b.conv2.forwardArena(h, a)
	if b.norm2 != nil {
		h = b.norm2.forwardArena(h, a)
	}
	var shortcut *tensor.T
	if b.proj != nil {
		shortcut = b.proj.forwardArena(x, a)
	} else {
		shortcut = x
	}
	h.AddInPlace(shortcut)
	return b.outRelu.forwardArena(h, a)
}

// forwardArena implements arenaForwarder for DenseUnit.
func (u *DenseUnit) forwardArena(x *tensor.T, a *tensor.Arena) *tensor.T {
	branch := u.conv.forwardArena(x, a)
	branch = u.norm.forwardArena(branch, a)
	branch = u.relu.forwardArena(branch, a)

	h, w := x.Shape[1], x.Shape[2]
	out := a.New(x.Shape[0]+branch.Shape[0], h, w)
	copy(out.Data[:x.Len()], x.Data)
	copy(out.Data[x.Len():], branch.Data)
	return out
}
