package nn

import (
	"fmt"

	"repro/internal/calibrate"
	"repro/internal/tensor"
)

// Int8 quantized execution nodes (DESIGN.md §9). CompileInt8 compiles the
// network like Compile32, then runs a calibration batch through the f32
// nodes recording the activation range entering every top-level Conv2D and
// Dense layer, and swaps those nodes for quantized versions:
//
//	quantize input (uint8, calibrated affine scale/zp)
//	  → byte im2col / transpose
//	  → uint8 GEMM with int32 accumulators (tensor.GemmU8Into)
//	  → fused dequantize + bias (tensor.DequantRow)
//
// Weights use per-output-channel symmetric scales quantized from the
// ORIGINAL float64 parameters, so weight precision is exactly the 8-bit
// budget and not 8 bits of an f32 round-trip. Layers inside composite
// blocks (ResidualBlock, DenseUnit) stay float32: their activations feed
// shortcut adds and concats where requantization error compounds, and the
// zoo's composite convs are a small share of total MACs.

// qconv32 is the quantized convolution node. The dequant corrections are
// folded per output channel at compile time: corr[oc] = zp·Σqw (the
// zero-point term) and deq[oc] = s_x·s_w[oc] (the combined scale); the
// column-sum term is produced by the GEMM per output position.
type qconv32 struct {
	inC, outC, kh, kw, stride, pad int

	qw    tensor.QuantWeights
	shift *tensor.PackedConvShift // compile-time kernel-column panels (stride-1 only)
	deq   []float32
	corr  []int32
	bias  []float32

	invScale float32
	zp       uint8
}

func newQConv32(c *Conv2D, scale float32, zp uint8) *qconv32 {
	q := &qconv32{
		inC: c.InC, outC: c.OutC, kh: c.KH, kw: c.KW, stride: c.Stride, pad: c.Pad,
		qw:       tensor.QuantizeWeightsSym(c.weight.Value.Data, c.OutC, c.InC*c.KH*c.KW),
		deq:      make([]float32, c.OutC),
		corr:     make([]int32, c.OutC),
		bias:     make([]float32, c.OutC),
		invScale: 1 / scale,
		zp:       zp,
	}
	if c.Stride == 1 && c.InC*c.KH*c.KW <= tensor.MaxQuantK {
		q.shift = tensor.PackConvShiftU8(q.qw.Bits, c.OutC, c.InC, c.KH, c.KW)
	}
	for oc := 0; oc < c.OutC; oc++ {
		q.deq[oc] = float32(float64(scale) * q.qw.Scale[oc])
		q.corr[oc] = int32(zp) * q.qw.RowSum[oc]
		q.bias[oc] = float32(c.bias.Value.Data[oc])
	}
	return q
}

func (q *qconv32) forward(src *tensor.T32, inShape []int, bsz int, a *tensor.Arena32) (*tensor.T32, []int) {
	g := tensor.ConvGeom{
		InC: q.inC, InH: inShape[1], InW: inShape[2],
		KH: q.kh, KW: q.kw, Stride: q.stride, Pad: q.pad,
	}
	oh, ow := g.OutH(), g.OutW()
	ohw := oh * ow
	bohw := bsz * ohw
	ckk := q.inC * q.kh * q.kw

	qsrc := a.Bytes(len(src.Data))
	tensor.QuantizeU8(qsrc, src.Data, q.invScale, q.zp)

	acc := a.Int32s(q.outC * bohw)
	colsum := a.Int32s(bohw)
	if tensor.PrepackEnabled() && a.Abft() == nil {
		if q.shift != nil {
			// Direct shift convolution: no im2col operand at all — the
			// kernels consume the padded channel-interleaved image through
			// the compile-time kernel-column weight panels (DESIGN.md §14).
			// int32 accumulation is order-independent, so the result is
			// exact.
			tensor.ConvDirectU8(acc, colsum, q.shift, qsrc[:bsz*q.inC*g.InH*g.InW], bsz, g, q.zp)
		} else {
			// Strided convs: implicit GEMM, the byte im2col operand
			// generated per panel instead of materialized.
			tensor.ConvGemmU8Im2Col(acc, colsum, q.qw.Bits, q.outC, qsrc[:bsz*q.inC*g.InH*g.InW], bsz, g, q.zp)
		}
	} else {
		// Verified mode needs the materialized operand for the checksum pass.
		qcols := a.Bytes(ckk * bohw)
		tensor.Im2ColBatchU8(qcols, qsrc, bsz, g, q.zp)
		tensor.GemmU8Into(acc, colsum, q.qw.Bits, qcols, q.outC, ckk, bohw)
		if s := a.Abft(); s != nil {
			s.Record(tensor.VerifyGemmU8(acc, colsum, q.qw.Bits, qcols, q.outC, ckk, bohw))
		}
	}

	dst := a.NewRaw(bsz, q.outC*ohw)
	for oc := 0; oc < q.outC; oc++ {
		crow := acc[oc*bohw : (oc+1)*bohw]
		for b := 0; b < bsz; b++ {
			drow := dst.Data[b*q.outC*ohw+oc*ohw : b*q.outC*ohw+(oc+1)*ohw]
			tensor.DequantRow(drow, crow[b*ohw:(b+1)*ohw], colsum[b*ohw:(b+1)*ohw], q.corr[oc], q.deq[oc], q.bias[oc])
		}
	}
	return dst, []int{q.outC, oh, ow}
}

// qdense32 is the quantized fully connected node. The prepacked path
// (default) keeps activations in their natural [B, In] row layout and runs
// them against the compile-time transposed weight pack [In, Out], so the
// per-call activation transpose, the output scatter, and the weight-side
// column-sum pass all disappear; the zero-point correction uses the
// activation row sums instead. With prepacking disabled the legacy
// orientation — quantize-transpose to [In, B], GEMM to [Out, B], scatter
// back — runs instead; both produce bit-identical outputs (the int32
// accumulators are order-independent and the dequant epilogues perform
// the same operations in the same order).
type qdense32 struct {
	in, out int

	qw     tensor.QuantWeights
	packed *tensor.PackedU8T // compile-time [In, Out] transpose of qw
	deq    []float32
	corr   []int32
	bias   []float32

	invScale float32
	zp       uint8
}

func newQDense32(d *Dense, scale float32, zp uint8) *qdense32 {
	q := &qdense32{
		in: d.In, out: d.Out,
		qw:       tensor.QuantizeWeightsSym(d.weight.Value.Data, d.Out, d.In),
		deq:      make([]float32, d.Out),
		corr:     make([]int32, d.Out),
		bias:     make([]float32, d.Out),
		invScale: 1 / scale,
		zp:       zp,
	}
	q.packed = tensor.PackQuantTranspose(q.qw)
	for o := 0; o < d.Out; o++ {
		q.deq[o] = float32(float64(scale) * q.qw.Scale[o])
		q.corr[o] = int32(zp) * q.qw.RowSum[o]
		q.bias[o] = float32(d.bias.Value.Data[o])
	}
	return q
}

func (q *qdense32) forward(src *tensor.T32, inShape []int, bsz int, a *tensor.Arena32) (*tensor.T32, []int) {
	if prodShape(inShape) != q.in {
		panic(fmt.Sprintf("nn: qdense32: batched input of %d elements, want %d", prodShape(inShape), q.in))
	}
	if tensor.PrepackEnabled() {
		return q.forwardPrepacked(src, bsz, a)
	}
	qb := a.Bytes(q.in * bsz)
	tensor.QuantizeTransposeU8(qb, src.Data[:bsz*q.in], bsz, q.in, q.invScale, q.zp)

	acc := a.Int32s(q.out * bsz)
	colsum := a.Int32s(bsz)
	tensor.GemmU8Into(acc, colsum, q.qw.Bits, qb, q.out, q.in, bsz)
	if s := a.Abft(); s != nil {
		s.Record(tensor.VerifyGemmU8(acc, colsum, q.qw.Bits, qb, q.out, q.in, bsz))
	}

	rows := a.NewRaw(q.out, bsz)
	for o := 0; o < q.out; o++ {
		tensor.DequantRow(rows.Data[o*bsz:(o+1)*bsz], acc[o*bsz:(o+1)*bsz], colsum, q.corr[o], q.deq[o], q.bias[o])
	}
	dst := a.NewRaw(bsz, q.out)
	for b := 0; b < bsz; b++ {
		drow := dst.Data[b*q.out : (b+1)*q.out]
		for o := 0; o < q.out; o++ {
			drow[o] = rows.Data[o*bsz+b]
		}
	}
	return dst, []int{q.out}
}

// forwardPrepacked is the activations-major qdense32 path against the
// compile-time weight transpose. The accumulator value for (b, o) is the
// same dot product as the legacy orientation's (o, b) — int32 addition is
// order-independent — and the dequant epilogue performs the identical
// operation sequence (c − 128·rowsum − corr, convert, ×deq, +bias) as
// tensor.DequantRow, so outputs are bit-identical to the legacy path.
func (q *qdense32) forwardPrepacked(src *tensor.T32, bsz int, a *tensor.Arena32) (*tensor.T32, []int) {
	qa := a.Bytes(bsz * q.in)
	tensor.QuantizeU8(qa, src.Data[:bsz*q.in], q.invScale, q.zp)

	acc := a.Int32s(bsz * q.out)
	tensor.GemmU8PreInto(acc, qa, q.packed.Bits, bsz, q.in, q.out)
	if s := a.Abft(); s != nil {
		// The verifier's injection and repair seams write through the
		// colsum slice, so hand it a scratch copy of the precomputed sums.
		cs := a.Int32s(q.out)
		copy(cs, q.packed.ColSum)
		s.Record(tensor.VerifyGemmU8(acc, cs, qa, q.packed.Bits, bsz, q.in, q.out))
	}

	dst := a.NewRaw(bsz, q.out)
	for b := 0; b < bsz; b++ {
		var rs int32
		for _, v := range qa[b*q.in : (b+1)*q.in] {
			rs += int32(v)
		}
		arow := acc[b*q.out : (b+1)*q.out]
		drow := dst.Data[b*q.out : (b+1)*q.out]
		for o := 0; o < q.out; o++ {
			drow[o] = float32(arow[o]-128*rs-q.corr[o])*q.deq[o] + q.bias[o]
		}
	}
	return dst, []int{q.out}
}

// CompileInt8 compiles the network into an int8-quantized inference net.
// calib is a non-empty sample of network inputs (already preprocessed the
// way inference inputs will be); each top-level Conv2D and Dense layer's
// input-activation range over the sample fixes its quantization scale and
// zero point. Layers whose dot-product length exceeds tensor.MaxQuantK
// stay float32 (the int8 GEMM's accumulator would overflow); everything in
// the model zoo is far under the cap.
func (n *Network) CompileInt8(calib []*tensor.T) (*Net32, error) {
	net, err := n.Compile32()
	if err != nil {
		return nil, err
	}
	if len(calib) == 0 {
		return nil, fmt.Errorf("nn: CompileInt8: empty calibration sample")
	}

	// Mark the quantizable node indices (top-level Conv2D/Dense under the
	// accumulator cap), then run the calibration batch through the f32
	// nodes, observing the input activation range at each marked node.
	quantizable := make([]bool, len(n.Layers))
	for i, l := range n.Layers {
		switch t := l.(type) {
		case *Conv2D:
			quantizable[i] = t.InC*t.KH*t.KW <= tensor.MaxQuantK
		case *Dense:
			quantizable[i] = t.In <= tensor.MaxQuantK
		}
	}
	ranges := make([]calibrate.Range, len(net.nodes))
	a := tensor.NewArena32()
	bsz := len(calib)
	shape := append([]int(nil), calib[0].Shape...)
	elems := prodShape(shape)
	cur := a.NewRaw(bsz, elems)
	for b, x := range calib {
		if !x.SameShape(calib[0]) {
			return nil, fmt.Errorf("nn: CompileInt8: mixed calibration shapes %v vs %v", x.Shape, calib[0].Shape)
		}
		row := cur.Data[b*elems : (b+1)*elems]
		for i, v := range x.Data {
			row[i] = float32(v)
		}
	}
	for i, nd := range net.nodes {
		if quantizable[i] {
			ranges[i].ObserveSlice32(cur.Data)
		}
		cur, shape = nd.forward(cur, shape, bsz, a)
	}

	for i, l := range n.Layers {
		if !quantizable[i] {
			continue
		}
		scale, zp := ranges[i].AffineU8()
		switch t := l.(type) {
		case *Conv2D:
			net.nodes[i] = newQConv32(t, scale, zp)
		case *Dense:
			net.nodes[i] = newQDense32(t, scale, zp)
		}
	}
	net.Quantized = true
	return net, nil
}
