package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Network is a sequential stack of layers ending in a logit vector with one
// element per class. Composite layers (ResidualBlock, DenseUnit) provide
// skip connections internally, so a sequential container suffices for every
// topology in the model zoo.
type Network struct {
	// InShape is the expected input shape, e.g. [3 32 32].
	InShape []int
	// Classes is the number of output classes.
	Classes int
	// Layers are applied in order.
	Layers []Layer

	// ActivationHook, when non-nil, is applied to the output of every layer
	// during inference (Forward with train=false). It is used by the
	// reduced-precision simulation to truncate inter-layer activations the
	// way the paper's variable-precision load/store kernels do. The hook
	// must modify x in place.
	ActivationHook func(layer int, x *tensor.T)
}

// NewNetwork validates that the layers chain correctly from inShape to a
// flat [classes] logit vector and returns the assembled network.
func NewNetwork(inShape []int, classes int, layers ...Layer) (*Network, error) {
	shape := append([]int(nil), inShape...)
	for i, l := range layers {
		out, err := l.OutShape(shape)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, l.Name(), err)
		}
		shape = out
	}
	if len(shape) != 1 || shape[0] != classes {
		return nil, fmt.Errorf("nn: network output shape %v, want [%d]", shape, classes)
	}
	return &Network{InShape: append([]int(nil), inShape...), Classes: classes, Layers: layers}, nil
}

// MustNetwork is NewNetwork that panics on error; used by the model zoo
// builders whose topologies are fixed at compile time.
func MustNetwork(inShape []int, classes int, layers ...Layer) *Network {
	n, err := NewNetwork(inShape, classes, layers...)
	if err != nil {
		panic(err)
	}
	return n
}

// Forward runs the network and returns the logit vector. With train=true,
// layers cache state for Backward; with train=false the ActivationHook (if
// set) is applied after every layer.
func (n *Network) Forward(x *tensor.T, train bool) *tensor.T {
	h := x
	for i, l := range n.Layers {
		h = l.Forward(h, train)
		if !train && n.ActivationHook != nil {
			n.ActivationHook(i, h)
		}
	}
	return h
}

// Backward propagates the loss gradient through all layers, accumulating
// parameter gradients. It must follow a Forward with train=true.
func (n *Network) Backward(grad *tensor.T) {
	g := grad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
}

// Infer runs the network on x and returns the softmax probability vector.
func (n *Network) Infer(x *tensor.T) *tensor.T {
	return Softmax(n.Forward(x, false))
}

// Predict returns the predicted class and its softmax probability.
func (n *Network) Predict(x *tensor.T) (label int, confidence float64) {
	probs := n.Infer(x)
	return probs.MaxIndex()
}

// Params returns all trainable parameters in a stable order.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears all accumulated parameter gradients.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// StateTensors returns all non-trainable state tensors (normalization
// running statistics) in a stable order, for serialization.
func (n *Network) StateTensors() []*tensor.T {
	var ts []*tensor.T
	for _, l := range n.Layers {
		if s, ok := l.(Stateful); ok {
			ts = append(ts, s.StateTensors()...)
		}
	}
	return ts
}

// NumParams returns the total number of trainable scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Value.Len()
	}
	return total
}

// LayerStats returns the per-layer computational footprint, in layer order,
// threading the shapes through the network.
func (n *Network) LayerStats() []Stats {
	stats := make([]Stats, 0, len(n.Layers))
	shape := n.InShape
	for _, l := range n.Layers {
		if c, ok := l.(Counter); ok {
			stats = append(stats, c.Stats(shape))
		} else {
			stats = append(stats, Stats{})
		}
		out, err := l.OutShape(shape)
		if err != nil {
			panic(fmt.Sprintf("nn: LayerStats on invalid network: %v", err))
		}
		shape = out
	}
	return stats
}

// TotalStats aggregates LayerStats over the whole network.
func (n *Network) TotalStats() Stats {
	var total Stats
	for _, s := range n.LayerStats() {
		total = addStats(total, s)
	}
	return total
}
