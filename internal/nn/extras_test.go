package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestGradCheckLeakyReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	layers := []Layer{
		NewDense(10, 8, rng),
		NewLeakyReLU(0.1),
		NewDense(8, 4, rng),
	}
	checkGradients(t, layers, randInput(rng, 10), 1, 1e-4)
}

func TestLeakyReLUForward(t *testing.T) {
	l := NewLeakyReLU(0.1)
	x := tensor.FromSlice([]float64{-2, 0, 3}, 3)
	y := l.Forward(x, false)
	want := []float64{-0.2, 0, 3}
	for i, w := range want {
		if math.Abs(y.Data[i]-w) > 1e-12 {
			t.Errorf("LeakyReLU(%v) = %v, want %v", x.Data[i], y.Data[i], w)
		}
	}
	if NewLeakyReLU(0).Alpha != 0.01 {
		t.Error("default alpha not applied")
	}
}

func TestDropoutTrainVsInference(t *testing.T) {
	d := NewDropout(0.5, 1)
	x := tensor.New(1000)
	x.Fill(1)

	// Inference: identity.
	y := d.Forward(x, false)
	for i, v := range y.Data {
		if v != 1 {
			t.Fatalf("inference dropout modified element %d: %v", i, v)
		}
	}

	// Training: ~half dropped, survivors scaled by 2, mean preserved.
	yt := d.Forward(x, true)
	zeros, sum := 0, 0.0
	for _, v := range yt.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("survivor not rescaled: %v", v)
		}
		sum += v
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropped %d of 1000 at rate 0.5", zeros)
	}
	if mean := sum / 1000; math.Abs(mean-1) > 0.15 {
		t.Errorf("inverted dropout mean %v, want ≈1", mean)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	d := NewDropout(0.3, 2)
	x := tensor.New(100)
	x.Fill(1)
	y := d.Forward(x, true)
	grad := tensor.New(100)
	grad.Fill(1)
	dx := d.Backward(grad)
	for i := range y.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatalf("backward mask mismatch at %d", i)
		}
	}
}

func TestDropoutRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate 1.0 accepted")
		}
	}()
	NewDropout(1.0, 1)
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2 via its gradient 2(w-3).
	p := newParam("w", tensor.FromSlice([]float64{0}, 1), false)
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.Grad.Data[0] = 2 * (p.Value.Data[0] - 3)
		opt.Step([]*Param{p}, 1)
	}
	if math.Abs(p.Value.Data[0]-3) > 0.01 {
		t.Errorf("Adam converged to %v, want 3", p.Value.Data[0])
	}
}

func TestAdamTrainsTinyNet(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	net := buildTinyNet(rng, 2)
	samples := twoBlobSamples(rng, 80)
	opt := NewAdam(0.005)
	params := net.Params()
	for epoch := 0; epoch < 5; epoch++ {
		for _, s := range samples {
			logits := net.Forward(s.X, true)
			_, grad := SoftmaxCrossEntropy(logits, s.Label)
			net.Backward(grad)
			opt.Step(params, 1)
		}
	}
	if acc := Accuracy(net, samples); acc < 0.9 {
		t.Errorf("Adam-trained accuracy %.3f, want >= 0.9", acc)
	}
}

func TestAdamWeightDecayRespectsDecayFlag(t *testing.T) {
	w := newParam("w", tensor.FromSlice([]float64{1}, 1), true)
	b := newParam("b", tensor.FromSlice([]float64{1}, 1), false)
	opt := NewAdam(0.01)
	opt.WeightDecay = 1
	// Zero gradient: only decay (through the Adam machinery) acts on w.
	opt.Step([]*Param{w, b}, 1)
	if w.Value.Data[0] >= 1 {
		t.Errorf("decayed param did not shrink: %v", w.Value.Data[0])
	}
	if b.Value.Data[0] != 1 {
		t.Errorf("non-decay param changed: %v", b.Value.Data[0])
	}
}
