package perf

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cache/persist"
	"repro/internal/core"
	"repro/internal/tensor"
)

// Measured benchmarks for the persistent L2 cache tier. Entries whose name
// starts with "BenchmarkCacheL2" are split out of the cache report into
// BENCH_cache2.json (see TestMain). The headline numbers are
// BenchmarkCacheL2ColdStart (restart time-to-99%-hit-ratio with and without
// the disk tier) and BenchmarkCacheL2FlushOverhead/zipf_steady_state, whose
// flush_overhead_pct metric must stay under 5%: the write-behind flusher is
// off the serve path by design, so tiering the cache must not meaningfully
// slow a serving-shaped workload.

var decisionCodec = persist.Codec[core.Decision]{
	Encode: core.EncodeDecision,
	Decode: core.DecodeDecision,
}

// recordEntry stores a manually measured ns/op under the benchmark's name —
// for benchmarks whose timing is taken with interleaved best-of-N passes
// rather than a b.N loop — replacing any earlier probe-run entry (the same
// contract as timeOp).
func recordEntry(b *testing.B, nsPerOp float64) *BenchEntry {
	b.Helper()
	entry := BenchEntry{Name: b.Name(), NsPerOp: nsPerOp}
	for i := range collected {
		if collected[i].Name == entry.Name {
			collected[i] = entry
			return &collected[i]
		}
	}
	collected = append(collected, entry)
	return &collected[len(collected)-1]
}

// BenchmarkCacheL2ColdStart replays the Zipf workload against a freshly
// restarted process — an empty in-memory cache — with and without a warm L2
// directory underneath, and reports how many frames and how much wall time
// each needs before a full batch is served from cache (per-batch hit ratio
// ≥ 99%). One op is the whole restart: open the cache, stream every frame,
// close.
func BenchmarkCacheL2ColdStart(b *testing.B) {
	const batch = 32
	const seqLen = 48 * batch
	sys, frames := cacheSystemFixture(b, seqLen, 64, 1.1)
	memCfg := cache.Config{MaxBytes: 64 << 20}

	// replay returns the frame count and wall time until the per-batch hit
	// ratio first reaches 99% (-1 when it never does).
	replay := func(pc *core.PredictionCache) (reached int, toReach float64) {
		start := time.Now()
		reached = -1
		prev := pc.Stats()
		for i := 0; i < len(frames); i += batch {
			sys.ClassifyBatch(frames[i : i+batch])
			st := pc.Stats()
			hits, misses := st.Hits-prev.Hits, st.Misses-prev.Misses
			prev = st
			if reached < 0 && hits+misses > 0 && float64(hits)/float64(hits+misses) >= 0.99 {
				reached = i + batch
				toReach = float64(time.Since(start).Nanoseconds())
			}
		}
		return reached, toReach
	}

	// Warm the disk tier once: a first boot streams the workload through a
	// tiered cache and shuts down cleanly, leaving the directory every
	// "restart_with_l2" op recovers from.
	dir := b.TempDir()
	diskCfg := persist.Config{Dir: dir}
	pc, err := sys.EnableTieredCache(memCfg, diskCfg, "bits=0")
	if err != nil {
		b.Fatal(err)
	}
	replay(pc)
	if err := pc.Close(); err != nil {
		b.Fatal(err)
	}
	sys.Cache = nil

	var memNs99 float64
	b.Run("restart_memory_only", func(b *testing.B) {
		var reached int
		var ns float64
		e := timeOp(b, func() {
			pc := sys.EnableCache(memCfg, "bits=0")
			reached, ns = replay(pc)
			sys.Cache = nil
		})
		memNs99 = ns
		e.Metrics = map[string]float64{
			"frames_to_99": float64(reached),
			"ms_to_99":     ns / 1e6,
			"img_per_sec":  float64(seqLen) * 1e9 / e.NsPerOp,
		}
		b.ReportMetric(float64(reached), "frames_to_99")
		b.ReportMetric(ns/1e6, "ms_to_99")
	})
	b.Run("restart_with_l2", func(b *testing.B) {
		var reached int
		var ns float64
		e := timeOp(b, func() {
			pc, err := sys.EnableTieredCache(memCfg, diskCfg, "bits=0")
			if err != nil {
				b.Fatal(err)
			}
			reached, ns = replay(pc)
			if err := pc.Close(); err != nil {
				b.Fatal(err)
			}
			sys.Cache = nil
		})
		e.Metrics = map[string]float64{
			"frames_to_99": float64(reached),
			"ms_to_99":     ns / 1e6,
			"img_per_sec":  float64(seqLen) * 1e9 / e.NsPerOp,
		}
		if memNs99 > 0 && ns > 0 {
			e.Metrics["time_to_99_speedup"] = memNs99 / ns
			b.ReportMetric(memNs99/ns, "x_mem_to_99")
		}
		b.ReportMetric(float64(reached), "frames_to_99")
		b.ReportMetric(ns/1e6, "ms_to_99")
	})
}

// BenchmarkCacheL2FlushOverhead measures what the write-behind flusher adds
// to the serve path, memory-only vs tiered on the same workload with
// interleaved best-of-N timing: each rep times one memory-only pass and one
// tiered pass back to back on fresh caches (and a fresh empty directory), so
// both variants recompute the same misses and the tiered one additionally
// frames, CRCs, writes and fsyncs a record per miss. FlushL2 runs before the
// clock stops, so the tiered time covers the full durable write, not just
// the enqueue; store open/close stays outside the timed region (it is
// once-per-process, not steady state).
//
// The headline is zipf_steady_state — a serving cache's normal regime, hits
// dominating with a tail of novel keys feeding the flusher — whose
// flush_overhead_pct must stay under 5%. all_miss_ingest is the worst-case
// diagnostic: every single frame writes a record, bounding what a cold
// ingest can cost.
func BenchmarkCacheL2FlushOverhead(b *testing.B) {
	const batch = 32
	memCfg := cache.Config{MaxBytes: 64 << 20}
	// 4 shards, not the default 16: these working sets are a few dozen keys,
	// and each flush batch fsyncs every segment file it touched, so the shard
	// count sets the fixed fsync cost per coalescing tick.
	diskCfg := func(dir string) persist.Config { return persist.Config{Dir: dir, Shards: 4} }

	// measure returns the best-of-N interleaved (memory, tiered) pass times.
	measure := func(b *testing.B, sys *core.System, frames []*tensor.T) (baseline, tiered float64) {
		b.Helper()
		classifyAll := func() {
			for i := 0; i < len(frames); i += batch {
				sys.ClassifyBatch(frames[i : i+batch])
			}
		}
		root := b.TempDir()
		baseline, tiered = math.MaxFloat64, math.MaxFloat64
		for rep := 0; rep < 4; rep++ {
			sys.EnableCache(memCfg, "bits=0")
			start := time.Now()
			classifyAll()
			memNs := float64(time.Since(start).Nanoseconds())
			sys.Cache = nil

			pc, err := sys.EnableTieredCache(memCfg,
				diskCfg(filepath.Join(root, fmt.Sprint(rep))), "bits=0")
			if err != nil {
				b.Fatal(err)
			}
			start = time.Now()
			classifyAll()
			if err := pc.FlushL2(); err != nil {
				b.Fatal(err)
			}
			tierNs := float64(time.Since(start).Nanoseconds())
			if err := pc.Close(); err != nil {
				b.Fatal(err)
			}
			sys.Cache = nil

			if rep > 0 {
				baseline = math.Min(baseline, memNs)
				tiered = math.Min(tiered, tierNs)
			}
		}
		return baseline, tiered
	}
	report := func(b *testing.B, n int, baseline, tiered float64) {
		b.Helper()
		e := recordEntry(b, tiered)
		overhead := 100 * (tiered - baseline) / baseline
		e.Metrics = map[string]float64{
			"flush_overhead_pct": overhead,
			"img_per_sec":        float64(n) * 1e9 / tiered,
		}
		b.ReportMetric(overhead, "overhead_%")
	}

	b.Run("zipf_steady_state", func(b *testing.B) {
		// The experiment-scale window: ~64 distinct keys spread over 1536
		// frames, so the flusher's work amortizes over a serving-shaped
		// stream rather than being front-loaded into a few batches.
		const seqLen = 48 * batch
		sys, frames := cacheSystemFixture(b, seqLen, 64, 1.1)
		baseline, tiered := measure(b, sys, frames)
		report(b, seqLen, baseline, tiered)
	})
	b.Run("all_miss_ingest", func(b *testing.B) {
		const seqLen = 16 * batch
		sys, _ := cacheSystemFixture(b, 1, 2, 1.1)
		rng := rand.New(rand.NewSource(13))
		frames := make([]*tensor.T, seqLen)
		for i := range frames {
			frames[i] = tensor.New(3, 32, 32)
			frames[i].FillUniform(rng, 0, 1)
		}
		baseline, tiered := measure(b, sys, frames)
		report(b, seqLen, baseline, tiered)
	})
}

// BenchmarkCacheL2Store measures the raw persistent store: the synchronous
// cost of enqueueing a record on the serve path (Add never blocks on disk),
// the durable write throughput of a flushed batch, and the in-memory index
// hit path after recovery.
func BenchmarkCacheL2Store(b *testing.B) {
	fp := cache.Fingerprint{1}
	mkKeys := func(n int) []cache.Key {
		keys := make([]cache.Key, n)
		x := tensor.New(1, 2, 2)
		for i := range keys {
			x.Data[0] = float64(i)
			keys[i] = cache.ImageKey(fp, x.Shape, x.Data)
		}
		return keys
	}
	d := core.Decision{Label: 3, Reliable: true, Confidence: 0.9, Votes: map[int]int{3: 2, 1: 1}, Activated: 3}
	open := func(b *testing.B, dir string) *persist.Store[core.Decision] {
		b.Helper()
		s, err := persist.Open(persist.Config{Dir: dir, MaxBytes: 1 << 30, FlushEvery: time.Hour}, fp, decisionCodec)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}

	b.Run("flush_batch_512", func(b *testing.B) {
		s := open(b, b.TempDir())
		defer s.Close()
		keys := mkKeys(512)
		e := timeOp(b, func() {
			for _, k := range keys {
				s.Add(k, d)
			}
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
		})
		e.Metrics = map[string]float64{
			"ns_per_record":   e.NsPerOp / 512,
			"records_per_sec": 512 * 1e9 / e.NsPerOp,
		}
		b.ReportMetric(e.NsPerOp/512, "ns/record")
	})
	b.Run("get_hit", func(b *testing.B) {
		dir := b.TempDir()
		s := open(b, dir)
		keys := mkKeys(1024)
		for _, k := range keys {
			s.Add(k, d)
		}
		if err := s.Flush(); err != nil {
			b.Fatal(err)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		// Reopen so gets are served from the recovered index — the restart
		// read path, decode included.
		s = open(b, dir)
		defer s.Close()
		i := 0
		e := timeOp(b, func() {
			if _, ok := s.Get(keys[i&1023]); !ok {
				b.Fatal("recovered key missing")
			}
			i++
		})
		e.Metrics = map[string]float64{"ns_per_get": e.NsPerOp}
	})
}
