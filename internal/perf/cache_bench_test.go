package perf

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/preprocess"
	"repro/internal/tensor"
)

// Measured benchmarks for the content-addressed prediction cache. Entries
// whose name starts with "BenchmarkCache" are split out of the kernel report
// into BENCH_cache.json (see TestMain). The headline number is
// BenchmarkCacheWorkload/B=32: end-to-end ClassifyBatch throughput on a
// Zipf-skewed duplicate workload, cache-on vs cache-off, on an untrained
// 4-member convnet ensemble.

// cacheSystemFixture builds a 4-member SynthCIFAR-shaped ensemble sharing
// one untrained network behind distinct preprocessors (the race-fixture
// configuration, at convnet scale), plus a Zipf(s)-drawn frame sequence
// over a fixed pool — the duplicate-heavy arrival stream of a serving
// deployment.
func cacheSystemFixture(b *testing.B, seqLen, poolSize int, s float64) (*core.System, []*tensor.T) {
	b.Helper()
	var bench model.Benchmark
	for _, bb := range model.Benchmarks() {
		if bb.Name == "convnet" {
			bench = bb
		}
	}
	rng := rand.New(rand.NewSource(11))
	net := bench.Build(rng, 10, []int{3, 32, 32})
	pres := []string{"ORG", "FlipX", "FlipY", "Gamma(2)"}
	members := make([]core.Member, len(pres))
	for i, p := range pres {
		members[i] = core.Member{Name: p, Pre: preprocess.MustByName(p), Net: net}
	}
	sys, err := core.NewSystem(members, core.Thresholds{Conf: 0.2, Freq: 2})
	if err != nil {
		b.Fatal(err)
	}
	sys.Staged = true

	pool := make([]*tensor.T, poolSize)
	for i := range pool {
		pool[i] = tensor.New(3, 32, 32)
		pool[i].FillUniform(rng, 0, 1)
	}
	zipf := rand.NewZipf(rng, s, 1, uint64(poolSize-1))
	frames := make([]*tensor.T, seqLen)
	for i := range frames {
		frames[i] = pool[zipf.Uint64()]
	}
	return sys, frames
}

// BenchmarkCacheWorkload measures end-to-end ClassifyBatch over the Zipf
// workload with the prediction cache attached, against the cache-off
// baseline measured in the same process (best of three passes after
// warmup). One benchmark op is the full 512-frame sequence in B=32 chunks;
// the first op runs cold, later ops warm — the steady state of a server.
func BenchmarkCacheWorkload(b *testing.B) {
	const batch = 32
	const seqLen = 16 * batch
	b.Run("B=32", func(b *testing.B) {
		sys, frames := cacheSystemFixture(b, seqLen, 64, 1.1)
		classifyAll := func() {
			for i := 0; i < len(frames); i += batch {
				sys.ClassifyBatch(frames[i : i+batch])
			}
		}
		baseline := math.MaxFloat64
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			classifyAll()
			if e := float64(time.Since(start).Nanoseconds()); rep > 0 && e < baseline {
				baseline = e
			}
		}

		pc := sys.EnableCache(cache.Config{MaxBytes: 64 << 20}, "bits=0")
		e := timeOp(b, classifyAll)
		st := pc.Stats()
		imgPerSec := float64(seqLen) * 1e9 / e.NsPerOp
		speedup := baseline / e.NsPerOp
		hitRatio := 0.0
		if st.Hits+st.Misses > 0 {
			hitRatio = float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		e.Metrics = map[string]float64{
			"img_per_sec":         imgPerSec,
			"speedup_vs_uncached": speedup,
			"hit_ratio":           hitRatio,
		}
		b.ReportMetric(imgPerSec, "img/s")
		b.ReportMetric(speedup, "x_uncached")
		b.ReportMetric(hitRatio, "hit_ratio")
	})
}

// BenchmarkCacheStore measures the raw sharded store under a realistic key
// population: Get on a resident key (hit path, MRU bump) and the
// lookup-then-insert miss path under eviction pressure.
func BenchmarkCacheStore(b *testing.B) {
	mkKeys := func(n int) []cache.Key {
		fp := cache.Fingerprint{}
		keys := make([]cache.Key, n)
		x := tensor.New(1, 2, 2)
		for i := range keys {
			x.Data[0] = float64(i)
			keys[i] = cache.ImageKey(fp, x.Shape, x.Data)
		}
		return keys
	}
	d := core.Decision{Label: 3, Reliable: true, Confidence: 0.9, Votes: map[int]int{3: 2}, Activated: 2}

	b.Run("hit", func(b *testing.B) {
		c := cache.New[core.Decision](cache.Config{MaxBytes: 1 << 20, Shards: 16}, nil)
		keys := mkKeys(1024)
		for _, k := range keys {
			c.Add(k, d)
		}
		i := 0
		e := timeOp(b, func() {
			c.Get(keys[i&1023])
			i++
		})
		e.Metrics = map[string]float64{"ns_per_get": e.NsPerOp}
	})
	b.Run("miss_insert", func(b *testing.B) {
		// Budget below the population so inserts continuously evict.
		c := cache.New[core.Decision](cache.Config{MaxBytes: 64 * 256, Shards: 16},
			func(core.Decision) int64 { return 64 })
		keys := mkKeys(4096)
		i := 0
		e := timeOp(b, func() {
			k := keys[i&4095]
			if _, ok := c.Get(k); !ok {
				c.Add(k, d)
			}
			i++
		})
		e.Metrics = map[string]float64{"ns_per_miss_insert": e.NsPerOp}
	})
}
