package perf

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// Measured ABFT verified-mode benchmarks (DESIGN.md §10). Running them with
// -bench collects the clean-run overhead of checksum verification on the
// SynthCIFAR convnet system at B=32 per numeric backend, plus a live-buffer
// bit-flip campaign closing the loop against faults.KernelInjector, and
// TestMain writes the BENCH_abft.json report. The headline contract is
// overhead_pct ≤ 25 on every backend together with a ≥1000-flip campaign
// whose detected faults re-execution corrects back to the fault-free
// decisions.

// bestOfReps returns the fastest of reps timed passes of fn, in nanoseconds,
// after one untimed warmup pass. Min-of-N is robust against scheduler noise
// in a way mean-of-N is not, so both sides of the overhead ratio use it.
func bestOfReps(reps int, fn func()) float64 {
	fn()
	best := math.MaxFloat64
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if e := float64(time.Since(start).Nanoseconds()); e < best {
			best = e
		}
	}
	return best
}

// BenchmarkAbftClassifyBatch measures the clean-run cost of verified mode on
// ClassifyBatch at B=32 per backend. The unverified baseline is measured in
// the same process on an identical second system, so overhead_pct compares
// like with like; the benchmark fails if the verified decisions diverge from
// the unverified ones on any frame (they must be identical on clean runs).
func BenchmarkAbftClassifyBatch(b *testing.B) {
	for _, backend := range []core.Backend{core.BackendF64, core.BackendF32, core.BackendInt8} {
		b.Run(backend.String(), func(b *testing.B) {
			ref, xs := quantSystem(b, backend)
			want := ref.ClassifyBatch(xs)

			sys, _ := quantSystem(b, backend)
			sys.PrepareVerified(true)
			got := sys.ClassifyBatch(xs)
			for i := range got {
				if got[i].Label != want[i].Label || got[i].Reliable != want[i].Reliable {
					b.Fatalf("verified clean decision diverges from unverified on frame %d", i)
				}
			}

			baseline := bestOfReps(8, func() { ref.ClassifyBatch(xs) })
			verified := bestOfReps(8, func() { sys.ClassifyBatch(xs) })
			before := sys.AbftCounts()
			e := timeOp(b, func() { sys.ClassifyBatch(xs) })
			c := sys.AbftCounts()
			if c.Detected != before.Detected {
				b.Fatalf("clean benchmark run detected faults: %+v", c)
			}
			checksPerBatch := float64(c.Checks-before.Checks) / float64(b.N)
			overheadPct := (verified/baseline - 1) * 100
			e.Metrics = map[string]float64{
				"overhead_pct":     overheadPct,
				"baseline_ns":      baseline,
				"verified_ns":      verified,
				"img_per_sec":      float64(len(xs)) * 1e9 / e.NsPerOp,
				"checks_per_batch": checksPerBatch,
			}
			b.ReportMetric(overheadPct, "overhead%")
			b.ReportMetric(checksPerBatch, "checks/batch")
		})
	}
}

// BenchmarkAbftInjection runs the closed-loop bit-flip campaign per backend:
// every verified kernel call suffers one high-order flip in its live output
// buffer (faults.KernelInjector at rate 1) and the campaign continues past
// the timed window until at least 1000 flips landed. The recorded metrics
// pin the measured detection rate, the correction outcome, and the fraction
// of campaign rounds whose decisions re-execution restored to the fault-free
// result; ns/op is the cost of a fully-faulty B=32 round including repairs.
func BenchmarkAbftInjection(b *testing.B) {
	const targetFlips = 1000
	for _, backend := range []core.Backend{core.BackendF64, core.BackendF32, core.BackendInt8} {
		b.Run(backend.String(), func(b *testing.B) {
			sys, xs := quantSystem(b, backend)
			sys.PrepareVerified(true)
			clean := sys.ClassifyBatch(xs)
			before := sys.AbftCounts()

			ki := faults.NewKernelInjector(211+int64(backend), 1)
			ki.Install()
			defer ki.Remove()
			rounds, faultFree := 0, 0
			round := func() {
				got := sys.ClassifyBatch(xs)
				rounds++
				for i := range got {
					if got[i].Label != clean[i].Label || got[i].Reliable != clean[i].Reliable {
						return
					}
				}
				faultFree++
			}
			e := timeOp(b, round)
			for ki.Injected() < targetFlips {
				round()
			}

			c := sys.AbftCounts()
			inj := uint64(ki.Injected())
			detected := c.Detected - before.Detected
			corrected := c.Corrected - before.Corrected
			uncorrectable := c.Uncorrectable - before.Uncorrectable
			rate := float64(detected) / float64(inj)
			if rate < 0.95 {
				b.Fatalf("detection rate %.3f (%d/%d flips) below the 0.95 floor", rate, detected, inj)
			}
			if backend == core.BackendInt8 && detected != inj {
				b.Fatalf("int8 checksums are exact but missed flips: %d/%d", detected, inj)
			}
			if uncorrectable == 0 && faultFree != rounds {
				b.Fatalf("all faults corrected yet %d/%d rounds diverged from the fault-free decisions",
					rounds-faultFree, rounds)
			}
			e.Metrics = map[string]float64{
				"flips":                float64(inj),
				"detection_rate":       rate,
				"corrected":            float64(corrected),
				"uncorrectable":        float64(uncorrectable),
				"fault_free_round_pct": 100 * float64(faultFree) / float64(rounds),
			}
			b.ReportMetric(100*rate, "detect%")
			b.ReportMetric(100*float64(faultFree)/float64(rounds), "faultfree%")
		})
	}
}
