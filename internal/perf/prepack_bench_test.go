package perf

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Measured prepack benchmarks (DESIGN.md §14). Running with -bench collects
// the prepack-on vs prepack-off comparison and TestMain writes the
// BENCH_prepack.json report. Every entry measures at GOMAXPROCS=1 so the
// speedup isolates the per-core win of the prepacked/implicit paths from
// parallel scaling, and carries decisions_identical — 1 when the full
// decision set under prepacking DeepEquals the legacy path's — because a
// throughput number from a path that changed answers would be meaningless.

// benchGOMAXPROCS1 pins the process to one core for the duration of fn.
func benchGOMAXPROCS1(fn func()) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

// BenchmarkPrepackClassifyBatch measures the 4-member convnet system's
// ClassifyBatch at B=32 per numeric backend, prepacked paths on, against
// the legacy-path baseline (prepack off) measured in the same process:
// speedup_prepack is the headline ≥1.3× acceptance metric.
func BenchmarkPrepackClassifyBatch(b *testing.B) {
	for _, backend := range []core.Backend{core.BackendF64, core.BackendF32, core.BackendInt8} {
		b.Run(backend.String(), func(b *testing.B) {
			sys, xs := quantSystem(b, backend)
			benchGOMAXPROCS1(func() {
				prevPre := tensor.SetPrepack(false)
				off := sys.ClassifyBatch(xs)
				baseline := math.MaxFloat64
				for rep := 0; rep < 4; rep++ {
					start := time.Now()
					sys.ClassifyBatch(xs)
					if e := float64(time.Since(start).Nanoseconds()); rep > 0 && e < baseline {
						baseline = e
					}
				}

				tensor.SetPrepack(true)
				on := sys.ClassifyBatch(xs)
				identical := 0.0
				if reflect.DeepEqual(on, off) {
					identical = 1.0
				}
				e := timeOp(b, func() { sys.ClassifyBatch(xs) })
				tensor.SetPrepack(prevPre)

				imgPerSec := float64(len(xs)) * 1e9 / e.NsPerOp
				speedup := baseline / e.NsPerOp
				e.Metrics = map[string]float64{
					"img_per_sec":         imgPerSec,
					"speedup_prepack":     speedup,
					"decisions_identical": identical,
				}
				b.ReportMetric(imgPerSec, "img/s")
				b.ReportMetric(speedup, "x_legacy")
				b.ReportMetric(identical, "identical")
			})
		})
	}
}

// BenchmarkPrepackConvGemm isolates the implicit-GEMM convolution against
// the explicit im2col + GEMM pipeline it replaces, on the B=32 convnet conv
// shapes, f32 backend (the SIMD path the system benchmark leans on).
func BenchmarkPrepackConvGemm(b *testing.B) {
	shapes := []struct {
		name string
		g    tensor.ConvGeom
		outC int
	}{
		{"conv1_3to8_32x32", tensor.ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}, 8},
		{"conv2_8to12_16x16", tensor.ConvGeom{InC: 8, InH: 16, InW: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}, 12},
	}
	const bsz = 32
	rng := rand.New(rand.NewSource(17))
	for _, s := range shapes {
		b.Run(fmt.Sprintf("%s_B%d", s.name, bsz), func(b *testing.B) {
			g := s.g
			k := g.InC * g.KH * g.KW
			n := bsz * g.OutH() * g.OutW()
			chw := g.InC * g.InH * g.InW
			weight := tensor.New32(s.outC, k)
			src := tensor.New32(bsz, chw)
			for i := range weight.Data {
				weight.Data[i] = float32(rng.NormFloat64())
			}
			for i := range src.Data {
				src.Data[i] = float32(rng.NormFloat64())
			}
			cm := tensor.New32(s.outC, n)
			cols := tensor.New32(k, n)

			benchGOMAXPROCS1(func() {
				baseline := math.MaxFloat64
				for rep := 0; rep < 4; rep++ {
					start := time.Now()
					tensor.Im2ColBatch32(cols, src, bsz, g)
					tensor.GemmInto32Fast(cm, weight, cols)
					if e := float64(time.Since(start).Nanoseconds()); rep > 0 && e < baseline {
						baseline = e
					}
				}
				tensor.ConvGemmIm2Col32(cm, weight, src.Data, bsz, g) // warm pools
				e := timeOp(b, func() { tensor.ConvGemmIm2Col32(cm, weight, src.Data, bsz, g) })
				gflops := 2 * float64(s.outC) * float64(k) * float64(n) / e.NsPerOp
				speedup := baseline / e.NsPerOp
				e.Metrics = map[string]float64{
					"gflops":          gflops,
					"speedup_prepack": speedup,
				}
				b.ReportMetric(gflops, "gflops")
				b.ReportMetric(speedup, "x_explicit")
			})
		})
	}
}
