package perf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestWriteBenchReport round-trips the BENCH_kernels.json document.
func TestWriteBenchReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	r := BenchReport{
		GoMaxProcs: 1,
		Entries: []BenchEntry{
			{Name: "BenchmarkInferBatch/B=32", NsPerOp: 7.1e6, BytesPerOp: 2048,
				Metrics: map[string]float64{"img_per_sec": 4500, "speedup_vs_per_image": 2.3}},
			{Name: "BenchmarkGemm/square_m128_k128_n128", NsPerOp: 1.2e6, BytesPerOp: 0},
		},
	}
	if err := WriteBenchReport(path, r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got BenchReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round-trip mismatch:\nwrote %+v\nread  %+v", r, got)
	}
}
