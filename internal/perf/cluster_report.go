package perf

import (
	"encoding/json"
	"os"
)

// This file holds the machine-readable output of the ext-cluster experiment
// (internal/experiments/fig_cluster.go): a 1-node vs 3-node comparison of
// the consistent-hash routed serving cluster on the Zipf workload. The run
// writes BENCH_cluster.json (path overridable via PGMR_BENCH_CLUSTER_JSON)
// so CI can archive the scale-out behavior across commits.

// ClusterPoint is one cluster-size measurement.
type ClusterPoint struct {
	// Nodes is the cluster size of this point.
	Nodes int `json:"nodes"`
	// ColdImgPerSec is the aggregate image throughput of the first (cache-
	// cold) pass; WarmImgPerSec of the second pass over the same stream.
	ColdImgPerSec float64 `json:"cold_img_per_sec"`
	WarmImgPerSec float64 `json:"warm_img_per_sec"`
	// Images is the aggregate image count of each pass (nodes × frames —
	// every node streams the full workload concurrently).
	Images int `json:"images"`
	// HitRatio is the effective cache hit ratio over the warm pass, summed
	// across every node's prediction cache.
	HitRatio float64 `json:"hit_ratio"`
	// UniqueComputes is how many distinct image keys were computed by the
	// ensemble across the whole cluster (per pass the Zipf pool size when
	// routing works: each unique image computed on exactly one node).
	UniqueComputes int `json:"unique_computes"`
	// Owned/Forwarded/Fallback are the routing counters summed over nodes.
	Owned     uint64 `json:"owned"`
	Forwarded uint64 `json:"forwarded"`
	Fallback  uint64 `json:"fallback"`
	// Identical reports every decision of both passes was bit-identical to
	// the single-process baseline.
	Identical bool `json:"identical"`
}

// ClusterReport is the BENCH_cluster.json document.
type ClusterReport struct {
	Benchmark  string         `json:"benchmark"`
	Members    int            `json:"members"`
	GoMaxProcs int            `json:"gomaxprocs"`
	PoolImages int            `json:"pool_images"`
	ZipfS      float64        `json:"zipf_s"`
	Batch      int            `json:"batch"`
	Frames     int            `json:"frames"`
	Points     []ClusterPoint `json:"points"`
}

// ClusterReportPath resolves where the report goes: $PGMR_BENCH_CLUSTER_JSON
// when set, else internal/perf/BENCH_cluster.json relative to the working
// directory (the repo root for `go run ./cmd/pgmr-bench ext-cluster`).
func ClusterReportPath() string {
	if p := os.Getenv("PGMR_BENCH_CLUSTER_JSON"); p != "" {
		return p
	}
	return "internal/perf/BENCH_cluster.json"
}

// WriteClusterReport writes the report as indented JSON.
func WriteClusterReport(path string, r ClusterReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
