package perf

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Measured kernel benchmarks for the minibatch-fused inference path. Running
// them with -bench collects every measurement and TestMain writes the
// BENCH_kernels.json report (see bench_report.go). The headline number is
// BenchmarkInferBatch/B=32, whose speedup_vs_per_image metric compares the
// fused batch forward pass against the per-image InferArena fan-out on the
// SynthCIFAR convnet topology.

var collected []BenchEntry

func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 && len(collected) > 0 {
		// Cache and quant-backend benchmarks get their own reports so the
		// kernel, caching and reduced-precision numbers version
		// independently in CI artifacts.
		var kernels, caches, cache2, quant, abft, prepack []BenchEntry
		for _, e := range collected {
			switch {
			// L2 before the plain cache case: "BenchmarkCache" is a prefix
			// of "BenchmarkCacheL2".
			case strings.HasPrefix(e.Name, "BenchmarkCacheL2"):
				cache2 = append(cache2, e)
			case strings.HasPrefix(e.Name, "BenchmarkCache"):
				caches = append(caches, e)
			case strings.HasPrefix(e.Name, "BenchmarkQuant"):
				quant = append(quant, e)
			case strings.HasPrefix(e.Name, "BenchmarkAbft"):
				abft = append(abft, e)
			case strings.HasPrefix(e.Name, "BenchmarkPrepack"):
				prepack = append(prepack, e)
			default:
				kernels = append(kernels, e)
			}
		}
		write := func(entries []BenchEntry, envKey, fallback string) {
			if len(entries) == 0 {
				return
			}
			path := os.Getenv(envKey)
			if path == "" {
				path = fallback
			}
			r := BenchReport{GoMaxProcs: runtime.GOMAXPROCS(0), Entries: entries}
			if err := WriteBenchReport(path, r); err != nil {
				fmt.Fprintf(os.Stderr, "perf: writing %s: %v\n", path, err)
				code = 1
			}
		}
		write(kernels, "PGMR_BENCH_JSON", "BENCH_kernels.json")
		write(caches, "PGMR_BENCH_CACHE_JSON", "BENCH_cache.json")
		write(cache2, "PGMR_BENCH_CACHE2_JSON", "BENCH_cache2.json")
		write(quant, "PGMR_BENCH_QUANT_JSON", "BENCH_quant.json")
		write(abft, "PGMR_BENCH_ABFT_JSON", "BENCH_abft.json")
		write(prepack, "PGMR_BENCH_PREPACK_JSON", "BENCH_prepack.json")
	}
	os.Exit(code)
}

// timeOp runs fn b.N times under manual wall-clock and allocation accounting
// and records the measurement under the benchmark's name, replacing any entry
// from a smaller earlier b.N probe run. The returned pointer stays valid
// until the next timeOp call; callers attach extra metrics through it right
// away.
func timeOp(b *testing.B, fn func()) *BenchEntry {
	b.Helper()
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		fn()
	}
	elapsed := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	entry := BenchEntry{
		Name:       b.Name(),
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(b.N),
		BytesPerOp: int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(b.N),
	}
	for i := range collected {
		if collected[i].Name == entry.Name {
			collected[i] = entry
			return &collected[i]
		}
	}
	collected = append(collected, entry)
	return &collected[len(collected)-1]
}

// BenchmarkGemm measures GemmInto on the lowered convolution shapes the
// batched convnet forward pass produces at B=32, plus a square control.
func BenchmarkGemm(b *testing.B) {
	shapes := []struct {
		name    string
		m, k, n int
	}{
		{"conv1_m8_k27_n32768", 8, 27, 32 * 1024},
		{"conv2_m12_k72_n8192", 12, 72, 32 * 256},
		{"square_m128_k128_n128", 128, 128, 128},
	}
	rng := rand.New(rand.NewSource(7))
	for _, s := range shapes {
		b.Run(s.name, func(b *testing.B) {
			lhs := tensor.New(s.m, s.k)
			lhs.FillNormal(rng, 0, 1)
			rhs := tensor.New(s.k, s.n)
			rhs.FillNormal(rng, 0, 1)
			dst := tensor.New(s.m, s.n)
			e := timeOp(b, func() { tensor.GemmInto(dst, lhs, rhs) })
			gflops := 2 * float64(s.m) * float64(s.k) * float64(s.n) / e.NsPerOp
			e.Metrics = map[string]float64{"gflops": gflops}
			b.ReportMetric(gflops, "gflops")
		})
	}
}

// BenchmarkIm2ColBatch measures the batched lowering of 32 CIFAR-shaped
// images for a 3×3/s1/p1 convolution.
func BenchmarkIm2ColBatch(b *testing.B) {
	g := tensor.ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	const bsz = 32
	rng := rand.New(rand.NewSource(7))
	srcs := make([]*tensor.T, bsz)
	for i := range srcs {
		srcs[i] = tensor.New(g.InC, g.InH, g.InW)
		srcs[i].FillNormal(rng, 0, 1)
	}
	dst := tensor.New(g.InC*g.KH*g.KW, bsz*g.OutH()*g.OutW())
	e := timeOp(b, func() { tensor.Im2ColBatch(dst, srcs, g) })
	gbps := float64(len(dst.Data)*8) / e.NsPerOp
	e.Metrics = map[string]float64{"write_gb_per_sec": gbps}
	b.ReportMetric(gbps, "writeGB/s")
}

func convnetFixture(bsz int) (*nn.Network, []*tensor.T) {
	var bench model.Benchmark
	for _, bb := range model.Benchmarks() {
		if bb.Name == "convnet" {
			bench = bb
		}
	}
	rng := rand.New(rand.NewSource(11))
	net := bench.Build(rng, 10, []int{3, 32, 32})
	xs := make([]*tensor.T, bsz)
	for i := range xs {
		xs[i] = tensor.New(3, 32, 32)
		xs[i].FillUniform(rng, 0, 1)
	}
	return net, xs
}

// BenchmarkInferBatch measures the fused batch forward pass of the SynthCIFAR
// convnet across batch sizes and reports throughput plus the speedup over the
// per-image InferArena fan-out baseline (measured in the same process, best
// of three passes after warmup).
func BenchmarkInferBatch(b *testing.B) {
	for _, bsz := range []int{1, 8, 32, 128} {
		b.Run(fmt.Sprintf("B=%d", bsz), func(b *testing.B) {
			net, xs := convnetFixture(bsz)
			a := tensor.NewArena()
			baseline := math.MaxFloat64
			for rep := 0; rep < 4; rep++ {
				start := time.Now()
				for _, x := range xs {
					net.InferArena(x, a)
					a.Reset()
				}
				if e := float64(time.Since(start).Nanoseconds()); rep > 0 && e < baseline {
					baseline = e
				}
			}
			net.InferBatchArena(xs, a)
			a.Reset()
			e := timeOp(b, func() {
				net.InferBatchArena(xs, a)
				a.Reset()
			})
			imgPerSec := float64(bsz) * 1e9 / e.NsPerOp
			speedup := baseline / e.NsPerOp
			e.Metrics = map[string]float64{
				"img_per_sec":          imgPerSec,
				"speedup_vs_per_image": speedup,
			}
			b.ReportMetric(imgPerSec, "img/s")
			b.ReportMetric(speedup, "x_per_image")
		})
	}
}
