package perf

import (
	"encoding/json"
	"os"
)

// This file holds the machine-readable output of the ext-slo experiment
// (internal/experiments/fig_slo.go): an open-loop offered-load sweep of the
// serving subsystem with and without the SLO-driven adaptive cascade
// controller. The sweep writes BENCH_slo.json (path overridable via
// PGMR_BENCH_SLO_JSON) so CI can archive the latency/accuracy Pareto and
// dashboards can track the controller's behavior across commits.

// SLOPoint is one (mode, offered-rate) measurement of the sweep.
type SLOPoint struct {
	// Mode is "static" or "slo".
	Mode string `json:"mode"`
	// RateReqPerSec is the offered open-loop request rate; RateImgPerSec
	// the image rate (requests carry the report's ImagesPerRequest).
	RateReqPerSec float64 `json:"rate_req_per_sec"`
	RateImgPerSec float64 `json:"rate_img_per_sec,omitempty"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	Rejected      int     `json:"rejected"`
	Failed        int     `json:"failed"`
	// Warmup is how many leading requests the percentiles exclude (the
	// ramp-up / controller-transient cut; identical for both modes at the
	// same offered rate).
	Warmup int `json:"warmup,omitempty"`
	// Latency percentiles over successful post-warmup requests, in
	// milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	// MetBudget reports P99Ms <= the report's SLOMs.
	MetBudget bool `json:"met_budget"`
	// Controller state after the run (zero-valued for static points).
	Tier         int    `json:"tier,omitempty"`
	TierName     string `json:"tier_name,omitempty"`
	StepDowns    uint64 `json:"step_downs,omitempty"`
	StepUps      uint64 `json:"step_ups,omitempty"`
	BudgetMisses uint64 `json:"budget_misses,omitempty"`
	Escalations  uint64 `json:"escalations,omitempty"`
}

// SLOReport is the BENCH_slo.json document.
type SLOReport struct {
	Benchmark  string  `json:"benchmark"`
	Members    int     `json:"members"`
	SLOMs      float64 `json:"slo_ms"`
	GoMaxProcs int     `json:"gomaxprocs"`
	// ImagesPerRequest is the request payload size of the sweep (the SLO
	// is a per-request budget).
	ImagesPerRequest int `json:"images_per_request,omitempty"`
	// AgreementLowLoad is the fraction of (label, reliable) decisions the
	// policy-attached system shares with the static full-precision cascade
	// on the low-load region (acceptance floor: 0.99).
	AgreementLowLoad float64    `json:"agreement_low_load"`
	Points           []SLOPoint `json:"points"`
}

// SLOReportPath resolves where the report goes: $PGMR_BENCH_SLO_JSON when
// set, else internal/perf/BENCH_slo.json relative to the working directory
// (the repo root for `go run ./cmd/pgmr-bench ext-slo`).
func SLOReportPath() string {
	if p := os.Getenv("PGMR_BENCH_SLO_JSON"); p != "" {
		return p
	}
	return "internal/perf/BENCH_slo.json"
}

// WriteSLOReport writes the report as indented JSON.
func WriteSLOReport(path string, r SLOReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
