// Package perf is the analytical GPU performance and energy model that
// substitutes for the paper's GPGPUsim v4.0 + GPUWattch simulation
// (DESIGN.md §1). Per-layer MAC counts and byte traffic come from the
// nn.Counter statistics; latency follows a per-layer roofline
// (max of compute time and memory time plus a kernel-launch overhead) and
// energy is a linear model over MACs and DRAM bytes.
//
// The model captures the two mechanisms the paper's cost results rest on:
//
//   - batch-1 CNN inference is dominated by weight traffic, so packing
//     reduced-precision values cuts both energy and latency roughly in
//     proportion to the bit width (RAMR, §III-D);
//   - a sequential MR system multiplies cost by the number of activated
//     members, so staged activation (RADE) scales cost by the mean
//     activation count, and k GPUs divide latency by up to k (§IV-C).
package perf

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// GPU holds the hardware constants of the analytical model.
type GPU struct {
	// Name identifies the configuration.
	Name string
	// PeakMACs is the sustained compute throughput in MAC/s.
	PeakMACs float64
	// MemBW is the sustained DRAM bandwidth in bytes/s.
	MemBW float64
	// EnergyPerMAC is in joules.
	EnergyPerMAC float64
	// EnergyPerByte is the DRAM access energy in joules.
	EnergyPerByte float64
	// KernelOverhead is the per-layer launch latency in seconds.
	KernelOverhead float64
	// IdlePower is the static power draw in watts, charged over latency.
	IdlePower float64
}

// TitanX returns constants in the regime of the paper's TITAN X (Pascal):
// ~11 TFLOP/s fp32 (5.5e12 MAC/s), ~480 GB/s DRAM, and energy constants
// chosen so that batch-1 inference of the benchmark CNNs is memory-dominated
// (the regime in which the paper's precision packing pays off).
//
// Kernel-launch overhead and idle power are set to zero: the paper's
// full-size networks amortize per-layer launch costs over millions of MACs,
// whereas this repository's scaled-down substitutes would otherwise be
// launch-dominated and hide the precision-scaling mechanism entirely
// (DESIGN.md §1). EmbeddedCPU keeps non-zero overheads as a contrast.
func TitanX() GPU {
	return GPU{
		Name:          "TITAN X (Pascal)",
		PeakMACs:      5.5e12,
		MemBW:         480e9,
		EnergyPerMAC:  8e-12,
		EnergyPerByte: 160e-12,
	}
}

// LayerCost is the footprint of one layer at a given precision.
type LayerCost struct {
	MACs float64
	// Bytes counts weight loads plus activation stores, after packing at
	// the configured bit width.
	Bytes float64
}

// Cost is an energy/latency pair.
type Cost struct {
	Energy  float64 // joules
	Latency float64 // seconds
}

// Add returns the sum of two costs (sequential composition).
func (c Cost) Add(o Cost) Cost {
	return Cost{Energy: c.Energy + o.Energy, Latency: c.Latency + o.Latency}
}

// NetworkLayerCosts derives the per-layer cost of a network at the given
// storage width in bits (32 for the fp32 baseline).
func NetworkLayerCosts(net *nn.Network, bits int) []LayerCost {
	if bits <= 0 {
		bits = 32
	}
	stats := net.LayerStats()
	costs := make([]LayerCost, len(stats))
	bytesPerElem := float64(bits) / 8
	for i, s := range stats {
		costs[i] = LayerCost{
			MACs:  float64(s.MACs),
			Bytes: float64(s.ParamElems+s.ActElems) * bytesPerElem,
		}
	}
	return costs
}

// InferenceCost evaluates one forward pass of a network on the GPU at the
// given precision.
func InferenceCost(g GPU, net *nn.Network, bits int) Cost {
	return costOf(g, NetworkLayerCosts(net, bits))
}

func costOf(g GPU, layers []LayerCost) Cost {
	var c Cost
	for _, l := range layers {
		compute := l.MACs / g.PeakMACs
		memory := l.Bytes / g.MemBW
		c.Latency += math.Max(compute, memory) + g.KernelOverhead
		c.Energy += l.MACs*g.EnergyPerMAC + l.Bytes*g.EnergyPerByte
	}
	c.Energy += g.IdlePower * c.Latency
	return c
}

// MemoryBoundFraction reports the fraction of layer latency that is
// memory-bound, a diagnostic for the model regime.
func MemoryBoundFraction(g GPU, layers []LayerCost) float64 {
	var mem, total float64
	for _, l := range layers {
		compute := l.MACs / g.PeakMACs
		memory := l.Bytes / g.MemBW
		t := math.Max(compute, memory)
		total += t
		if memory >= compute {
			mem += t
		}
	}
	if total == 0 {
		return 0
	}
	return mem / total
}

// SystemConfig describes an MR system execution for costing.
type SystemConfig struct {
	// MemberCosts is the per-member inference cost, in RADE priority order.
	MemberCosts []Cost
	// PreprocessCost is charged once per activated member (Layer 1).
	PreprocessCost Cost
	// DecisionCost is charged once per input (Layer 3).
	DecisionCost Cost
	// GPUs is the number of members that can run concurrently (1 for the
	// sequential single-GPU worst case, 2 for the DRIVE-AGX-style setup).
	GPUs int
}

// SystemCost evaluates the mean per-input cost of the MR system given the
// per-sample activation counts recorded by a staged (RADE) evaluation; for
// a non-staged system pass activations all equal to the member count.
//
// Energy is the sum over activated members; latency schedules members
// greedily over the available GPUs (members are near-identical, so the
// schedule is ceil(activated/GPUs) rounds of the slowest member in each
// round).
func SystemCost(cfg SystemConfig, activations []int) (Cost, error) {
	n := len(cfg.MemberCosts)
	if n == 0 {
		return Cost{}, fmt.Errorf("perf: no member costs")
	}
	gpus := cfg.GPUs
	if gpus < 1 {
		gpus = 1
	}
	if len(activations) == 0 {
		return Cost{}, fmt.Errorf("perf: no activation counts")
	}
	var total Cost
	for _, a := range activations {
		if a < 1 {
			a = 1
		}
		if a > n {
			a = n
		}
		var c Cost
		// Energy: every activated member plus its preprocessing.
		for m := 0; m < a; m++ {
			c.Energy += cfg.MemberCosts[m].Energy + cfg.PreprocessCost.Energy
		}
		// Latency: rounds of up to `gpus` members; each round costs the
		// maximum member latency in the round.
		for start := 0; start < a; start += gpus {
			end := start + gpus
			if end > a {
				end = a
			}
			round := 0.0
			for m := start; m < end; m++ {
				round = math.Max(round, cfg.MemberCosts[m].Latency+cfg.PreprocessCost.Latency)
			}
			c.Latency += round
		}
		c = c.Add(cfg.DecisionCost)
		total = total.Add(c)
	}
	inv := 1 / float64(len(activations))
	return Cost{Energy: total.Energy * inv, Latency: total.Latency * inv}, nil
}

// TailLatency returns the worst-case (all members activated) latency of the
// system — the quantity the §IV-C discussion compares against the 100 ms
// autonomous-driving budget.
func TailLatency(cfg SystemConfig) float64 {
	n := len(cfg.MemberCosts)
	all := make([]int, 1)
	all[0] = n
	c, err := SystemCost(cfg, all)
	if err != nil {
		return 0
	}
	return c.Latency
}

// FullActivations returns a slice of length samples filled with n, for
// costing non-staged systems.
func FullActivations(samples, n int) []int {
	a := make([]int, samples)
	for i := range a {
		a[i] = n
	}
	return a
}
