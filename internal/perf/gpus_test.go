package perf

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func TestGPUConfigsSane(t *testing.T) {
	for _, g := range []GPU{TitanX(), DriveAGX(), EmbeddedCPU()} {
		t.Run(g.Name, func(t *testing.T) {
			if g.PeakMACs <= 0 || g.MemBW <= 0 || g.EnergyPerMAC <= 0 || g.EnergyPerByte <= 0 {
				t.Errorf("non-positive constants: %+v", g)
			}
			if g.KernelOverhead < 0 || g.IdlePower < 0 {
				t.Errorf("negative overheads: %+v", g)
			}
		})
	}
}

func TestGPUOrdering(t *testing.T) {
	// Use a compute-heavy network: on tiny models kernel-launch overhead
	// legitimately makes the CPU competitive, so the accelerator ordering
	// only emerges once arithmetic dominates.
	rng := rand.New(rand.NewSource(71))
	net := nn.MustNetwork([]int{3, 64, 64}, 4,
		nn.NewConv2D(3, 32, 3, 1, 1, rng), nn.NewReLU(),
		nn.NewConv2D(32, 32, 3, 1, 1, rng), nn.NewReLU(), nn.NewMaxPool2D(2),
		nn.NewFlatten(), nn.NewDense(32*32*32, 4, rng),
	)
	titan := InferenceCost(TitanX(), net, 32)
	agx := InferenceCost(DriveAGX(), net, 32)
	cpu := InferenceCost(EmbeddedCPU(), net, 32)
	if !(titan.Latency <= agx.Latency && agx.Latency < cpu.Latency) {
		t.Errorf("latency ordering violated: titan %v, agx %v, cpu %v",
			titan.Latency, agx.Latency, cpu.Latency)
	}
}

func TestTwoGPUAGXBeatsSequentialOnLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	net := nn.MustNetwork([]int{3, 16, 16}, 4,
		nn.NewConv2D(3, 8, 3, 1, 1, rng), nn.NewReLU(), nn.NewMaxPool2D(2),
		nn.NewFlatten(), nn.NewDense(8*8*8, 4, rng),
	)
	member := InferenceCost(DriveAGX(), net, 14)
	costs := []Cost{member, member, member, member}
	seq, err := SystemCost(SystemConfig{MemberCosts: costs, GPUs: 1}, FullActivations(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	par, err := SystemCost(SystemConfig{MemberCosts: costs, GPUs: 2}, FullActivations(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if par.Latency >= seq.Latency {
		t.Errorf("2-GPU latency %v not below sequential %v", par.Latency, seq.Latency)
	}
	if par.Energy != seq.Energy {
		t.Errorf("parallelism changed energy: %v vs %v", par.Energy, seq.Energy)
	}
}
