package perf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func testNet(t *testing.T) *nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(70))
	return nn.MustNetwork([]int{3, 16, 16}, 4,
		nn.NewConv2D(3, 8, 3, 1, 1, rng), nn.NewReLU(), nn.NewMaxPool2D(2),
		nn.NewConv2D(8, 12, 3, 1, 1, rng), nn.NewReLU(), nn.NewMaxPool2D(2),
		nn.NewFlatten(), nn.NewDense(12*4*4, 4, rng),
	)
}

func TestNetworkLayerCosts(t *testing.T) {
	net := testNet(t)
	costs32 := NetworkLayerCosts(net, 32)
	costs16 := NetworkLayerCosts(net, 16)
	if len(costs32) != len(net.Layers) {
		t.Fatalf("layer costs %d, want %d", len(costs32), len(net.Layers))
	}
	for i := range costs32 {
		if costs32[i].MACs != costs16[i].MACs {
			t.Error("MACs should not depend on precision")
		}
		if costs32[i].Bytes != 2*costs16[i].Bytes {
			t.Errorf("layer %d: 16-bit bytes %v not half of 32-bit %v", i, costs16[i].Bytes, costs32[i].Bytes)
		}
	}
	// bits<=0 defaults to 32.
	costsDefault := NetworkLayerCosts(net, 0)
	if costsDefault[0].Bytes != costs32[0].Bytes {
		t.Error("default bits not 32")
	}
}

func TestInferenceCostScalesWithPrecision(t *testing.T) {
	g := TitanX()
	net := testNet(t)
	full := InferenceCost(g, net, 32)
	half := InferenceCost(g, net, 16)
	if half.Energy >= full.Energy {
		t.Errorf("16-bit energy %v not below 32-bit %v", half.Energy, full.Energy)
	}
	if half.Latency > full.Latency {
		t.Errorf("16-bit latency %v above 32-bit %v", half.Latency, full.Latency)
	}
	if full.Energy <= 0 || full.Latency <= 0 {
		t.Error("non-positive cost")
	}
}

func TestMemoryBoundRegime(t *testing.T) {
	// The model must be memory-dominated at batch 1 and fp32 — the regime
	// the paper's RAMR savings depend on.
	g := TitanX()
	net := testNet(t)
	frac := MemoryBoundFraction(g, NetworkLayerCosts(net, 32))
	if frac < 0.5 {
		t.Errorf("memory-bound fraction %.2f; model is compute-dominated", frac)
	}
}

func TestSystemCostSequentialScaling(t *testing.T) {
	member := Cost{Energy: 1, Latency: 0.01}
	cfg := SystemConfig{
		MemberCosts: []Cost{member, member, member, member},
		GPUs:        1,
	}
	// Full activation of 4 members: 4× energy and latency.
	full, err := SystemCost(cfg, FullActivations(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Energy-4) > 1e-12 || math.Abs(full.Latency-0.04) > 1e-12 {
		t.Errorf("full cost %+v, want 4 / 0.04", full)
	}
	// Mean activation of 2 halves both.
	staged, err := SystemCost(cfg, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(staged.Energy-2) > 1e-12 || math.Abs(staged.Latency-0.02) > 1e-12 {
		t.Errorf("staged cost %+v", staged)
	}
}

func TestSystemCostTwoGPUs(t *testing.T) {
	member := Cost{Energy: 1, Latency: 0.01}
	cfg := SystemConfig{
		MemberCosts: []Cost{member, member, member, member},
		GPUs:        2,
	}
	c, err := SystemCost(cfg, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	// Two rounds of two parallel members: latency halves, energy unchanged.
	if math.Abs(c.Latency-0.02) > 1e-12 {
		t.Errorf("2-GPU latency %v, want 0.02", c.Latency)
	}
	if math.Abs(c.Energy-4) > 1e-12 {
		t.Errorf("2-GPU energy %v, want 4 (parallelism saves no energy)", c.Energy)
	}
	// Odd activation count: ceil(3/2)=2 rounds.
	c3, _ := SystemCost(cfg, []int{3})
	if math.Abs(c3.Latency-0.02) > 1e-12 {
		t.Errorf("3-member 2-GPU latency %v", c3.Latency)
	}
}

func TestSystemCostOverheadsAndClamping(t *testing.T) {
	cfg := SystemConfig{
		MemberCosts:    []Cost{{Energy: 1, Latency: 0.01}, {Energy: 1, Latency: 0.01}},
		PreprocessCost: Cost{Energy: 0.1, Latency: 0.001},
		DecisionCost:   Cost{Energy: 0.05, Latency: 0.0005},
		GPUs:           1,
	}
	c, err := SystemCost(cfg, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	wantE := 2*1.1 + 0.05
	wantL := 2*0.011 + 0.0005
	if math.Abs(c.Energy-wantE) > 1e-12 || math.Abs(c.Latency-wantL) > 1e-12 {
		t.Errorf("cost %+v, want %v / %v", c, wantE, wantL)
	}
	// Out-of-range activations clamp to [1, n].
	clamped, _ := SystemCost(cfg, []int{0, 99})
	if clamped.Energy <= 0 {
		t.Error("clamped activations produced no cost")
	}
	if _, err := SystemCost(SystemConfig{}, []int{1}); err == nil {
		t.Error("empty member costs accepted")
	}
	if _, err := SystemCost(cfg, nil); err == nil {
		t.Error("empty activations accepted")
	}
}

func TestTailLatency(t *testing.T) {
	cfg := SystemConfig{
		MemberCosts: []Cost{{Latency: 0.01}, {Latency: 0.02}},
		GPUs:        1,
	}
	if got := TailLatency(cfg); math.Abs(got-0.03) > 1e-12 {
		t.Errorf("TailLatency = %v, want 0.03", got)
	}
}

func TestRAMRSavingShape(t *testing.T) {
	// The headline cost mechanism: a 4-member system at 14 bits with ~2.3
	// mean activations must cost well under 4× baseline and within ~2×.
	g := TitanX()
	net := testNet(t)
	base := InferenceCost(g, net, 32)
	member14 := InferenceCost(g, net, 14)
	cfg := SystemConfig{MemberCosts: []Cost{member14, member14, member14, member14}, GPUs: 1}
	activations := []int{2, 2, 2, 3, 4, 2, 2, 2, 2, 2} // mean 2.3
	c, err := SystemCost(cfg, activations)
	if err != nil {
		t.Fatal(err)
	}
	ratio := c.Energy / base.Energy
	if ratio > 2.3 || ratio < 1.0 {
		t.Errorf("optimized system energy ratio %.2f; expected within (1.0, 2.3]", ratio)
	}
}
