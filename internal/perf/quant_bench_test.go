package perf

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/preprocess"
	"repro/internal/tensor"
)

// Measured reduced-precision backend benchmarks (DESIGN.md §9). Running them
// with -bench collects the per-backend ClassifyBatch wall-clock on the
// SynthCIFAR convnet at B=32 and TestMain writes the BENCH_quant.json report.
// Each entry carries speedup_vs_f64 (against an f64 system measured in the
// same process) and agreement_vs_f64 (label agreement over the input pool),
// so the report records both sides of the RAMR trade at once.

// quantSystem builds the 4-member SynthCIFAR convnet system used by the
// backend benchmarks, compiled for the given backend.
func quantSystem(b *testing.B, backend core.Backend) (*core.System, []*tensor.T) {
	b.Helper()
	net, xs := convnetFixture(32)
	pres := []string{"ORG", "FlipX", "FlipY", "Gamma(2)"}
	members := make([]core.Member, len(pres))
	for i, p := range pres {
		members[i] = core.Member{Name: p, Pre: preprocess.MustByName(p), Net: net, Backend: backend}
	}
	sys, err := core.NewSystem(members, core.Thresholds{Conf: 0.2, Freq: 2})
	if err != nil {
		b.Fatal(err)
	}
	sys.Staged = true
	sys.Workers = 1
	if err := sys.PrepareBackends(xs[:8]); err != nil {
		b.Fatal(err)
	}
	return sys, xs
}

// BenchmarkQuantClassifyBatch measures ClassifyBatch at B=32 on the convnet
// system per numeric backend. The f64 baseline is measured in the same
// process (best of three passes after warmup), so speedup_vs_f64 compares
// like with like; for f64 itself the metric pins the measurement noise.
func BenchmarkQuantClassifyBatch(b *testing.B) {
	ref, xs := quantSystem(b, core.BackendF64)
	want := ref.ClassifyBatch(xs)
	baseline := math.MaxFloat64
	for rep := 0; rep < 4; rep++ {
		start := time.Now()
		ref.ClassifyBatch(xs)
		if e := float64(time.Since(start).Nanoseconds()); rep > 0 && e < baseline {
			baseline = e
		}
	}

	for _, backend := range []core.Backend{core.BackendF64, core.BackendF32, core.BackendInt8} {
		b.Run(backend.String(), func(b *testing.B) {
			sys, _ := quantSystem(b, backend)
			got := sys.ClassifyBatch(xs)
			agree := 0
			for i := range got {
				if got[i].Label == want[i].Label {
					agree++
				}
			}
			e := timeOp(b, func() { sys.ClassifyBatch(xs) })
			imgPerSec := float64(len(xs)) * 1e9 / e.NsPerOp
			speedup := baseline / e.NsPerOp
			agreement := float64(agree) / float64(len(got))
			e.Metrics = map[string]float64{
				"img_per_sec":      imgPerSec,
				"speedup_vs_f64":   speedup,
				"agreement_vs_f64": agreement,
			}
			b.ReportMetric(imgPerSec, "img/s")
			b.ReportMetric(speedup, "x_f64")
			b.ReportMetric(agreement, "agree")
		})
	}
}

// BenchmarkQuantGemmU8 measures the raw uint8 GEMM against the float64 GEMM
// on the lowered B=32 convnet conv shapes, isolating the kernel-level gain
// from the end-to-end pipeline cost (quantize + im2col + dequant epilogues)
// reported by BenchmarkQuantClassifyBatch.
func BenchmarkQuantGemmU8(b *testing.B) {
	shapes := []struct {
		name    string
		m, k, n int
	}{
		{"conv1_m8_k27_n32768", 8, 27, 32 * 1024},
		{"conv2_m12_k72_n8192", 12, 72, 32 * 256},
	}
	rng := rand.New(rand.NewSource(7))
	for _, s := range shapes {
		b.Run(s.name, func(b *testing.B) {
			w := make([]float64, s.m*s.k)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			qw := tensor.QuantizeWeightsSym(w, s.m, s.k)
			qb := make([]uint8, s.k*s.n)
			rng.Read(qb)
			acc := make([]int32, s.m*s.n)
			colsum := make([]int32, s.n)
			e := timeOp(b, func() { tensor.GemmU8Into(acc, colsum, qw.Bits, qb, s.m, s.k, s.n) })
			gops := 2 * float64(s.m) * float64(s.k) * float64(s.n) / e.NsPerOp
			e.Metrics = map[string]float64{"gops": gops}
			b.ReportMetric(gops, "gops")
		})
	}
}
