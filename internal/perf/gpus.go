package perf

// DriveAGX returns constants in the regime of the NVIDIA DRIVE AGX platform
// the paper's §IV-C two-GPU scenario references: two Tensor-Core-class GPUs
// with an automotive power envelope. Per-GPU throughput is below the
// TITAN X while the pair allows two concurrent member activations
// (SystemConfig.GPUs = 2).
func DriveAGX() GPU {
	return GPU{
		Name:          "DRIVE AGX (per GPU)",
		PeakMACs:      2.5e12,
		MemBW:         256e9,
		EnergyPerMAC:  6e-12,
		EnergyPerByte: 120e-12,
	}
}

// EmbeddedCPU returns constants for a CPU-only edge deployment — a useful
// worst case for latency-budget reasoning with no accelerator available.
func EmbeddedCPU() GPU {
	return GPU{
		Name:           "embedded CPU",
		PeakMACs:       2e10,
		MemBW:          12e9,
		EnergyPerMAC:   60e-12,
		EnergyPerByte:  300e-12,
		KernelOverhead: 1e-6,
		IdlePower:      5,
	}
}
