package perf

import (
	"encoding/json"
	"os"
)

// This file holds the machine-readable output format of the measured kernel
// benchmark harness (kernels_bench_test.go) — as opposed to the analytical
// GPU model in perf.go, these numbers are wall-clock measurements of the
// repository's own CPU kernels. Running the benchmarks with -bench writes a
// BENCH_kernels.json report (path overridable via PGMR_BENCH_JSON) capturing
// ns/op, B/op and the batched-inference speedup over the per-image baseline.

// BenchEntry is one benchmark measurement.
type BenchEntry struct {
	// Name is the full benchmark name, e.g. "BenchmarkInferBatch/B=32".
	Name string `json:"name"`
	// NsPerOp is wall-clock nanoseconds per benchmark operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is heap bytes allocated per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// Metrics holds benchmark-specific extras, e.g. "img_per_sec" and
	// "speedup_vs_per_image" for the batched inference benchmarks, or
	// "gflops" for the GEMM shapes.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the BENCH_kernels.json document.
type BenchReport struct {
	// GoMaxProcs records the parallelism the numbers were taken at.
	GoMaxProcs int `json:"gomaxprocs"`
	// Entries are the collected measurements in execution order.
	Entries []BenchEntry `json:"entries"`
}

// WriteBenchReport writes the report as indented JSON.
func WriteBenchReport(path string, r BenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
