package calibrate

import (
	"math"
	"testing"
)

func TestRangeObserve(t *testing.T) {
	var r Range
	if !r.Empty() {
		t.Fatal("zero value must be empty")
	}
	r.Observe(math.NaN())
	if !r.Empty() {
		t.Fatal("NaN must not populate the range")
	}
	r.ObserveSlice([]float64{2, -3, 5})
	r.ObserveSlice32([]float32{4, -1})
	if r.Lo != -3 || r.Hi != 5 {
		t.Fatalf("range [%g, %g], want [-3, 5]", r.Lo, r.Hi)
	}
	r.Observe(math.NaN())
	if r.Lo != -3 || r.Hi != 5 {
		t.Fatalf("NaN widened the range to [%g, %g]", r.Lo, r.Hi)
	}
}

// TestAffineU8CoversRangeAndZero checks the quantization parameters: the
// interval [Lo, Hi] ∪ {0} maps into [0, 255] and zero maps exactly to zp.
func TestAffineU8CoversRangeAndZero(t *testing.T) {
	cases := []struct{ lo, hi float64 }{
		{0, 6.2},    // post-ReLU: non-negative
		{-1.5, 3.5}, // signed activations
		{-4, -1},    // all-negative: widened to include 0
		{0.5, 9},    // all-positive not touching 0: widened
	}
	for _, c := range cases {
		var r Range
		r.Observe(c.lo)
		r.Observe(c.hi)
		scale, zp := r.AffineU8()
		if scale <= 0 {
			t.Fatalf("[%g, %g]: scale %g must be positive", c.lo, c.hi, scale)
		}
		quant := func(v float64) float64 {
			return math.Round(v/float64(scale)) + float64(zp)
		}
		// Zero must quantize exactly to zp (within the round).
		if q := quant(0); q != float64(zp) {
			t.Errorf("[%g, %g]: zero maps to %g, want zp=%d", c.lo, c.hi, q, zp)
		}
		// Endpoints must land inside [0, 255] after rounding slack.
		for _, v := range []float64{c.lo, c.hi, 0} {
			if q := quant(v); q < -0.5 || q > 255.5 {
				t.Errorf("[%g, %g]: value %g maps to %g, outside [0,255]", c.lo, c.hi, v, q)
			}
		}
	}
}

func TestAffineU8Degenerate(t *testing.T) {
	var empty Range
	if s, z := empty.AffineU8(); s != 1 || z != 0 {
		t.Errorf("empty range: (%g, %d), want (1, 0)", s, z)
	}
	var zero Range
	zero.Observe(0)
	if s, z := zero.AffineU8(); s != 1 || z != 0 {
		t.Errorf("constant-zero range: (%g, %d), want (1, 0)", s, z)
	}
	var inf Range
	inf.Observe(math.Inf(1))
	inf.Observe(-1)
	if s, z := inf.AffineU8(); s != 1 || z != 0 {
		t.Errorf("infinite range: (%g, %d), want (1, 0)", s, z)
	}
}
