package calibrate

import "math"

// Activation-range calibration for the int8 inference backend (DESIGN.md
// §9). The int8 backend quantizes each layer's input activations with a
// per-tensor affine uint8 scheme whose scale and zero point are fixed
// offline: the network runs forward over a small calibration sample while a
// Range records the min/max each quantized layer ever sees, and AffineU8
// turns that interval into quantization parameters. This reuses the same
// package that hosts the paper's temperature-scaling baseline because both
// are offline fitting passes over held-out data; they share no state.

// Range accumulates the observed extent of a stream of activation values.
// The zero value is an empty range.
type Range struct {
	Lo, Hi float64
	seen   bool
}

// Observe widens the range to include v. NaNs are ignored so a single
// degenerate activation cannot poison the calibration.
func (r *Range) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if !r.seen {
		r.Lo, r.Hi, r.seen = v, v, true
		return
	}
	if v < r.Lo {
		r.Lo = v
	}
	if v > r.Hi {
		r.Hi = v
	}
}

// ObserveSlice widens the range over every element of vs.
func (r *Range) ObserveSlice(vs []float64) {
	for _, v := range vs {
		r.Observe(v)
	}
}

// ObserveSlice32 widens the range over a float32 activation buffer — the
// storage format of the backend forward pass that drives calibration.
func (r *Range) ObserveSlice32(vs []float32) {
	for _, v := range vs {
		r.Observe(float64(v))
	}
}

// Empty reports whether the range has observed no values.
func (r *Range) Empty() bool { return !r.seen }

// AffineU8 converts the observed range into affine uint8 quantization
// parameters: q = round(v/scale) + zp, clamped to [0, 255]. The covered
// interval is widened to include 0 so that zero activations (ReLU output,
// convolution padding) quantize exactly to zp — a requirement of the
// zero-point correction in the int8 GEMM. An empty or degenerate range
// yields scale 1, zp 0, which round-trips an all-zero tensor exactly.
func (r *Range) AffineU8() (scale float32, zp uint8) {
	lo := math.Min(r.Lo, 0)
	hi := math.Max(r.Hi, 0)
	if r.Empty() || hi == lo || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return 1, 0
	}
	s := (hi - lo) / 255
	z := math.Round(-lo / s)
	if z < 0 {
		z = 0
	} else if z > 255 {
		z = 255
	}
	return float32(s), uint8(z)
}
