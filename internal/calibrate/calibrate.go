// Package calibrate implements temperature scaling (Guo et al., referenced
// by the paper's §IV-E) — the network-calibration baseline PolygraphMR is
// compared against. A single scalar temperature T is fitted on validation
// logits by minimizing the negative log-likelihood; scaled probabilities are
// softmax(logits/T).
package calibrate

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// FitTemperature finds the temperature minimizing the mean NLL of
// softmax(logits/T) against the labels, via golden-section search over
// [0.05, 20]. It returns the fitted temperature.
func FitTemperature(logits [][]float64, labels []int) (float64, error) {
	if len(logits) == 0 || len(logits) != len(labels) {
		return 0, fmt.Errorf("calibrate: need matching non-empty logits and labels (%d vs %d)", len(logits), len(labels))
	}
	nll := func(t float64) float64 {
		probs := metrics.SoftmaxAllTemp(logits, t)
		total := 0.0
		for i, p := range probs {
			total += -math.Log(math.Max(p[labels[i]], 1e-300))
		}
		return total / float64(len(probs))
	}
	lo, hi := 0.05, 20.0
	const phi = 0.6180339887498949
	a, b := hi-phi*(hi-lo), lo+phi*(hi-lo)
	fa, fb := nll(a), nll(b)
	for i := 0; i < 80 && hi-lo > 1e-4; i++ {
		if fa < fb {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			fa = nll(a)
		} else {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			fb = nll(b)
		}
	}
	return (lo + hi) / 2, nil
}

// Report summarizes the effect of temperature scaling.
type Report struct {
	Temperature float64
	// ECEBefore/ECEAfter are expected calibration errors at T=1 and T.
	ECEBefore, ECEAfter float64
	// NLLBefore/NLLAfter are mean negative log-likelihoods.
	NLLBefore, NLLAfter float64
}

// Evaluate fits a temperature on validation logits and reports calibration
// quality on evaluation logits (paper methodology: fit on val, report on
// test).
func Evaluate(valLogits [][]float64, valLabels []int, testLogits [][]float64, testLabels []int) (Report, error) {
	t, err := FitTemperature(valLogits, valLabels)
	if err != nil {
		return Report{}, err
	}
	before := metrics.SoftmaxAll(testLogits)
	after := metrics.SoftmaxAllTemp(testLogits, t)
	return Report{
		Temperature: t,
		ECEBefore:   metrics.ECE(before, testLabels, 15),
		ECEAfter:    metrics.ECE(after, testLabels, 15),
		NLLBefore:   meanNLL(before, testLabels),
		NLLAfter:    meanNLL(after, testLabels),
	}, nil
}

func meanNLL(probs [][]float64, labels []int) float64 {
	if len(probs) == 0 {
		return 0
	}
	total := 0.0
	for i, p := range probs {
		total += -math.Log(math.Max(p[labels[i]], 1e-300))
	}
	return total / float64(len(probs))
}
