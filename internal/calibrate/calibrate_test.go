package calibrate

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// overconfidentLogits builds a dataset whose logits are a known-good set
// scaled by `overconfidence`, so the optimal temperature is approximately
// that factor.
func overconfidentLogits(rng *rand.Rand, n, classes int, overconfidence float64) ([][]float64, []int) {
	logits := make([][]float64, n)
	labels := make([]int, n)
	for i := range logits {
		labels[i] = rng.Intn(classes)
		row := make([]float64, classes)
		for c := range row {
			row[c] = rng.NormFloat64() * 0.5
		}
		// Signal toward the true label; sometimes wrong.
		if rng.Float64() < 0.8 {
			row[labels[i]] += 2
		} else {
			row[(labels[i]+1)%classes] += 2
		}
		for c := range row {
			row[c] *= overconfidence
		}
		logits[i] = row
	}
	return logits, labels
}

func TestFitTemperatureRecoversScale(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	logits, labels := overconfidentLogits(rng, 2000, 5, 3.0)
	temp, err := FitTemperature(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted temperature should undo most of the 3× overconfidence.
	if temp < 2 || temp > 4.5 {
		t.Errorf("fitted T = %.3f; want ≈3", temp)
	}
}

func TestFitTemperatureWellCalibrated(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	logits, labels := overconfidentLogits(rng, 2000, 5, 1.0)
	temp, err := FitTemperature(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	if temp < 0.6 || temp > 1.7 {
		t.Errorf("fitted T = %.3f on calibrated data; want ≈1", temp)
	}
}

func TestFitTemperatureValidation(t *testing.T) {
	if _, err := FitTemperature(nil, nil); err == nil {
		t.Error("empty inputs accepted")
	}
	if _, err := FitTemperature([][]float64{{1, 2}}, []int{0, 1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestEvaluateImprovesCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	valLogits, valLabels := overconfidentLogits(rng, 1500, 5, 4.0)
	testLogits, testLabels := overconfidentLogits(rng, 1500, 5, 4.0)
	rep, err := Evaluate(valLogits, valLabels, testLogits, testLabels)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ECEAfter >= rep.ECEBefore {
		t.Errorf("scaling did not reduce ECE: %.4f -> %.4f", rep.ECEBefore, rep.ECEAfter)
	}
	if rep.NLLAfter >= rep.NLLBefore {
		t.Errorf("scaling did not reduce NLL: %.4f -> %.4f", rep.NLLBefore, rep.NLLAfter)
	}
}

// The paper's §IV-E headline: temperature scaling moves the TP/FP-vs-
// threshold curves but leaves the (TP, FP) Pareto frontier unchanged,
// because a monotone transform of confidences only relabels thresholds.
func TestTemperatureScalingPreservesPareto(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	logits, labels := overconfidentLogits(rng, 1000, 4, 3.0)
	before := metrics.SoftmaxAll(logits)
	after := metrics.SoftmaxAllTemp(logits, 3.0)

	// Temperature scaling preserves each sample's argmax but may reorder
	// confidences *between* samples, so the operating sets are not exactly
	// identical — the paper's claim is that the Pareto frontier is
	// (empirically) unchanged. Sweep each distribution at its own observed
	// confidence values and compare frontiers within a small tolerance.
	frontier := func(probs [][]float64) []metrics.Point {
		ths := []float64{0}
		for _, p := range probs {
			ths = append(ths, p[metrics.Argmax(p)])
		}
		var pts []metrics.Point
		for _, p := range metrics.ThresholdSweep(probs, labels, ths) {
			pts = append(pts, metrics.Point{TP: p.Rates.TP, FP: p.Rates.FP})
		}
		return metrics.ParetoFrontier(pts)
	}
	fb, fa := frontier(before), frontier(after)
	// For every before-frontier point, the after frontier must offer a point
	// at least as good within 1% in both coordinates.
	for _, pb := range fb {
		ok := false
		for _, pa := range fa {
			if pa.TP >= pb.TP-0.01 && pa.FP <= pb.FP+0.01 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("frontier point (TP=%.3f, FP=%.3f) not preserved after scaling", pb.TP, pb.FP)
		}
	}
}
