// Package telemetry is a small, dependency-free metrics layer for the
// serving subsystem: atomic counters, gauges, and fixed-bucket histograms
// collected in a Registry that renders the Prometheus text exposition
// format. It exists so the server can expose /metrics without pulling a
// client library into the module (the repo is stdlib-only by policy).
//
// The package has two levels: the generic Registry/Counter/Gauge/Histogram
// primitives in this file, and the domain Metrics bundle (metrics.go) that
// pre-registers every series the PolygraphMR serving path reports —
// request/response counters, batch-size and latency histograms, decision
// outcomes (reliable vs. escalated, per-member agreement), and the stream
// package's deadline-miss accounting.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name="value" pair attached to a metric at
// registration time.
type Label struct {
	Name, Value string
}

// Counter is a monotonically increasing counter. Safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with a sum and a count, matching
// the Prometheus histogram type (cumulative le buckets plus a +Inf bucket).
// Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []uint64  // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, the sum and the count.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.sum, h.count
}

// LinearBuckets returns n buckets starting at start, each width apart.
func LinearBuckets(start, width float64, n int) []float64 {
	bs := make([]float64, n)
	for i := range bs {
		bs[i] = start + width*float64(i)
	}
	return bs
}

// ExponentialBuckets returns n buckets starting at start, each factor
// larger than the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	bs := make([]float64, n)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}

// metric is one registered series: a counter, gauge or histogram plus its
// rendered label string.
type metric struct {
	labels string // `code="200"` — already escaped and sorted, "" when bare
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series of one metric name for HELP/TYPE rendering.
type family struct {
	name, help, kind string
	metrics          []*metric
}

// Registry holds registered metrics and renders them. Registration and
// rendering are mutex-guarded; the returned metric handles are lock-free
// (counters, gauges) or internally locked (histograms).
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) register(name, help, kind string, labels []Label) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	ls := renderLabels(labels)
	for _, m := range f.metrics {
		if m.labels == ls {
			panic(fmt.Sprintf("telemetry: duplicate metric %s{%s}", name, ls))
		}
	}
	m := &metric{labels: ls}
	f.metrics = append(f.metrics, m)
	return m
}

// Counter registers (and returns) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, "counter", labels)
	m.c = &Counter{}
	return m.c
}

// Gauge registers (and returns) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, "gauge", labels)
	m.g = &Gauge{}
	return m.g
}

// Histogram registers (and returns) a histogram series with the given
// ascending upper bucket bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	m := r.register(name, help, "histogram", labels)
	m.h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
	return m.h
}

// renderLabels formats constant labels sorted by name: `a="1",b="2"`.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = fmt.Sprintf("%s=%q", l.Name, escape(l.Value))
	}
	return strings.Join(parts, ",")
}

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// series renders `name{labels}` (or bare name), optionally merging extra
// label text (used for histogram le buckets).
func series(name, labels, extra string) string {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		return name
	}
	return name + "{" + all + "}"
}

// formatFloat renders a float the way Prometheus expects: %g, with the
// +Inf spelling for the overflow bucket bound.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	for i, name := range r.order {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escape(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, m := range f.metrics {
			switch {
			case m.c != nil:
				if _, err := fmt.Fprintf(w, "%s %d\n", series(f.name, m.labels, ""), m.c.Value()); err != nil {
					return err
				}
			case m.g != nil:
				if _, err := fmt.Fprintf(w, "%s %d\n", series(f.name, m.labels, ""), m.g.Value()); err != nil {
					return err
				}
			case m.h != nil:
				cum, sum, count := m.h.snapshot()
				for i, bound := range m.h.bounds {
					le := fmt.Sprintf("le=%q", formatFloat(bound))
					if _, err := fmt.Fprintf(w, "%s %d\n", series(f.name+"_bucket", m.labels, le), cum[i]); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", series(f.name+"_bucket", m.labels, `le="+Inf"`), cum[len(cum)-1]); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %s\n", series(f.name+"_sum", m.labels, ""), formatFloat(sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", series(f.name+"_count", m.labels, ""), count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
