package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	g := r.Gauge("g", "test gauge")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test histogram", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	cum, sum, count := h.snapshot()
	// le=1: 0.5 and 1 (bounds are inclusive); le=2: +1.5; le=4: +3; +Inf: +100.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative bucket %d = %d, want %d (all: %v)", i, cum[i], w, cum)
		}
	}
	if count != 5 || sum != 106 {
		t.Errorf("count=%d sum=%v", count, sum)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pgmr_things_total", "Things seen.", Label{"kind", "a"})
	c2 := r.Counter("pgmr_things_total", "Things seen.", Label{"kind", "b"})
	h := r.Histogram("pgmr_lat_seconds", "Latency.", []float64{0.1, 1})
	g := r.Gauge("pgmr_depth", "Depth.")
	c.Add(3)
	c2.Inc()
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)
	g.Set(7)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP pgmr_things_total Things seen.\n",
		"# TYPE pgmr_things_total counter\n",
		`pgmr_things_total{kind="a"} 3` + "\n",
		`pgmr_things_total{kind="b"} 1` + "\n",
		"# TYPE pgmr_lat_seconds histogram\n",
		`pgmr_lat_seconds_bucket{le="0.1"} 1` + "\n",
		`pgmr_lat_seconds_bucket{le="1"} 2` + "\n",
		`pgmr_lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"pgmr_lat_seconds_sum 10.55\n",
		"pgmr_lat_seconds_count 3\n",
		"# TYPE pgmr_depth gauge\npgmr_depth 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// HELP/TYPE emitted once per family even with two labeled series.
	if n := strings.Count(out, "# TYPE pgmr_things_total"); n != 1 {
		t.Errorf("TYPE line repeated %d times", n)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("x_total", "x")
	mustPanic("duplicate series", func() { r.Counter("x_total", "x") })
	mustPanic("kind clash", func() { r.Gauge("x_total", "x") })
	mustPanic("empty bounds", func() { r.Histogram("h", "h", nil) })
	mustPanic("unsorted bounds", func() { r.Histogram("h2", "h", []float64{2, 1}) })
}

func TestMetricsObserveDecision(t *testing.T) {
	m := NewMetrics(4)
	m.ObserveDecision(true, 3, 2)
	m.ObserveDecision(false, 1, 4)
	m.ObserveDecision(true, 4, 4)
	if m.Reliable.Value() != 2 || m.Escalated.Value() != 1 {
		t.Errorf("reliable=%d escalated=%d", m.Reliable.Value(), m.Escalated.Value())
	}
	if m.Agreement.Count() != 3 || m.Agreement.Sum() != 8 {
		t.Errorf("agreement count=%d sum=%v", m.Agreement.Count(), m.Agreement.Sum())
	}
	if m.Activated.Count() != 3 || m.Activated.Sum() != 10 {
		t.Errorf("activated count=%d sum=%v", m.Activated.Count(), m.Activated.Sum())
	}
}

func TestMetricsResponseCodes(t *testing.T) {
	m := NewMetrics(0)
	m.Response(200).Inc()
	m.Response(200).Inc()
	m.Response(429).Inc()
	var sb strings.Builder
	if err := m.Registry.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `pgmr_serve_responses_total{code="200"} 2`) ||
		!strings.Contains(out, `pgmr_serve_responses_total{code="429"} 1`) {
		t.Errorf("per-code counters missing:\n%s", out)
	}
}
