package telemetry

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// slowClassifier burns real wall-clock per frame so deadline accounting has
// something to measure without an injectable clock.
type slowClassifier struct {
	delay    time.Duration
	decision core.Decision
}

func (s slowClassifier) Classify(*tensor.T) core.Decision {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return s.decision
}

func runStream(t *testing.T, m *Metrics, cfg stream.Config, cls stream.Classifier, frames int) stream.Stats {
	t.Helper()
	p, err := stream.NewProcessor(cls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := make([]*tensor.T, frames)
	for i := range fs {
		fs[i] = tensor.New(1)
	}
	return p.Process(&stream.SliceSource{Frames: fs}, func(f stream.Frame) { m.ObserveFrame(f) })
}

// TestStreamDeadlineMissesFeedRegistry wires internal/stream's deadline-miss
// accounting into the telemetry registry the way the serving subsystem does
// (a per-frame handle calling ObserveFrame) and checks the counters agree
// with the processor's own Stats.
func TestStreamDeadlineMissesFeedRegistry(t *testing.T) {
	m := NewMetrics(4)
	dec := core.Decision{Label: 2, Reliable: true, Votes: map[int]int{2: 3}, Activated: 3}
	// Every frame sleeps ~2ms against a 100µs budget, so every frame must
	// miss: the measured latency can only exceed the sleep, never undercut
	// it.
	stats := runStream(t, m, stream.Config{Budget: 100 * time.Microsecond}, slowClassifier{2 * time.Millisecond, dec}, 5)

	if stats.DeadlineMisses != 5 {
		t.Fatalf("stream stats report %d misses, want 5", stats.DeadlineMisses)
	}
	if got := m.DeadlineMisses.Value(); got != uint64(stats.DeadlineMisses) {
		t.Errorf("registry misses = %d, stream stats = %d", got, stats.DeadlineMisses)
	}
	if m.StreamFrames.Value() != 5 {
		t.Errorf("frames counter = %d, want 5", m.StreamFrames.Value())
	}
	if m.FrameSeconds.Count() != 5 {
		t.Errorf("latency histogram count = %d, want 5", m.FrameSeconds.Count())
	}
	// Decision outcomes ride along: 5 reliable frames with agreement 3 of 3.
	if m.Reliable.Value() != 5 || m.Escalated.Value() != 0 {
		t.Errorf("reliable=%d escalated=%d", m.Reliable.Value(), m.Escalated.Value())
	}
	if m.Agreement.Sum() != 15 || m.Activated.Sum() != 15 {
		t.Errorf("agreement sum=%v activated sum=%v", m.Agreement.Sum(), m.Activated.Sum())
	}

	var sb strings.Builder
	if err := m.Registry.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pgmr_stream_deadline_misses_total 5") {
		t.Errorf("exposition missing miss counter:\n%s", sb.String())
	}
}

// TestStreamZeroBudgetNeverMisses locks in the Budget == 0 contract: with
// deadline accounting disabled, no frame is ever a miss — in the stream's
// own stats and in the registry it feeds — no matter how slow the
// classifier is.
func TestStreamZeroBudgetNeverMisses(t *testing.T) {
	m := NewMetrics(4)
	dec := core.Decision{Label: 0, Reliable: false, Votes: map[int]int{}, Activated: 4}
	stats := runStream(t, m, stream.Config{Budget: 0}, slowClassifier{time.Millisecond, dec}, 4)

	if stats.DeadlineMisses != 0 {
		t.Fatalf("Budget=0 produced %d misses in stream stats", stats.DeadlineMisses)
	}
	if m.DeadlineMisses.Value() != 0 {
		t.Errorf("Budget=0 produced %d misses in the registry", m.DeadlineMisses.Value())
	}
	if m.StreamFrames.Value() != 4 {
		t.Errorf("frames counter = %d, want 4", m.StreamFrames.Value())
	}
	// Latency is still observed — only the miss verdict is disabled.
	if m.FrameSeconds.Count() != 4 {
		t.Errorf("latency histogram count = %d, want 4", m.FrameSeconds.Count())
	}
	if m.Escalated.Value() != 4 || m.Reliable.Value() != 0 {
		t.Errorf("reliable=%d escalated=%d", m.Reliable.Value(), m.Escalated.Value())
	}
}
