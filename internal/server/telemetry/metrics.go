package telemetry

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/stream"
)

// Metrics is the pre-registered series bundle for the PolygraphMR serving
// subsystem. Everything the server, the dynamic batcher, and the stream
// processor report flows through one of these handles, so /metrics is a
// single-registry render.
type Metrics struct {
	Registry *Registry

	// HTTP envelope.
	Requests       *Counter   // every request that reached the classify handler
	Rejected       *Counter   // load-shed with 429 (admission queue full)
	InFlight       *Gauge     // classify requests currently being served
	QueueDepth     *Gauge     // items waiting in the batcher's admission queue
	RequestSeconds *Histogram // classify request wall-clock latency

	// Dynamic batcher.
	Batches   *Counter   // ClassifyBatch calls issued by the batcher
	Coalesced *Counter   // batches that coalesced more than one queue item
	Images    *Counter   // images classified through the batcher
	BatchSize *Histogram // images per ClassifyBatch call

	// Decision outcomes (paper Layer-3 accounting).
	Reliable  *Counter   // predictions that passed the reliability gate
	Escalated *Counter   // predictions flagged for escalation
	Agreement *Histogram // accepted member votes for the winning label
	Activated *Histogram // member networks consulted per decision

	// Stream deadline accounting (internal/stream).
	StreamFrames   *Counter   // frames observed via ObserveFrame
	DeadlineMisses *Counter   // frames whose latency exceeded the budget
	FrameSeconds   *Histogram // per-frame classification latency

	// Prediction cache (internal/cache). Hits/Misses count the server's
	// pre-admission probe outcomes; the gauges mirror the backend cache's
	// own cumulative counters and occupancy, refreshed on every probe.
	CacheHits      *Counter // images answered from the cache before admission
	CacheMisses    *Counter // probed images that had to be enqueued
	CacheCoalesced *Gauge   // inputs served by inflight coalescing / batch dedup
	CacheEntries   *Gauge   // predictions currently cached
	CacheBytes     *Gauge   // bytes currently charged against the cache budget

	// Persistent L2 cache tier (internal/cache/persist). All mirrored from
	// the backend cache's cumulative counters on every probe; zero when the
	// server runs without a disk tier.
	CacheL2Hits    *Gauge // decisions served from disk and promoted to memory
	CacheL2Entries *Gauge // live records indexed on disk
	CacheL2Bytes   *Gauge // live record bytes on disk
	CacheL2Backlog *Gauge // write-behind records queued, not yet flushed
	CacheL2Flushed *Gauge // records made durable by the flusher (cumulative)
	CacheL2Dropped *Gauge // records lost to backpressure or write errors (cumulative)

	// ABFT verification (DESIGN.md §10). Cumulative counters mirrored from
	// the system's verification sink after every batch dispatch, like the
	// cache gauges: detected faults caught in kernel epilogues, split by
	// whether re-execution corrected them.
	AbftChecks        *Gauge // checksum comparisons performed
	AbftDetected      *Gauge // checksum mismatches detected
	AbftCorrected     *Gauge // detected faults cleared by re-execution
	AbftUncorrectable *Gauge // detected faults that persisted (votes abstained)

	// Admission queue wait: how long each image sat in the batcher queue
	// between enqueue and dispatch.
	QueueWait *Histogram // pgmr_queue_wait_seconds

	// Cluster routing (internal/cluster, DESIGN.md §13). The counters are
	// advanced by deltas computed against the backend's cumulative snapshot
	// after every batch dispatch; all zero when the server runs unclustered.
	ClusterOwned         *Counter   // images computed locally as ring owner
	ClusterForwarded     *Counter   // images answered by their remote owner
	ClusterFallback      *Counter   // images computed locally because the owner was unreachable
	ClusterServed        *Counter   // peer requests answered as owner
	ClusterForwardErrors *Counter   // failed forward exchanges
	ClusterPeersUp       *Gauge     // remote peers currently accepting traffic
	ClusterPeersTotal    *Gauge     // remote peers configured
	ClusterConns         *Gauge     // pooled peer connections established
	ClusterForwardOK     *Counter   // forwarded exchanges that succeeded
	ClusterForwardFailed *Counter   // forwarded exchanges that failed
	ClusterForwardSecs   *Histogram // pgmr_cluster_forward_seconds

	// SLO policy controller (internal/policy, DESIGN.md §12). Mirrored from
	// the controller snapshot after every batch dispatch; all zero when the
	// server runs without a policy.
	PolicyTier         *Gauge // current degradation tier (0 = static)
	PolicyStageDepth   *Gauge // members activated through the last observed stage
	PolicyWindowUs     *Gauge // last planned batch window (µs)
	PolicyMaxBatch     *Gauge // last planned max batch size
	PolicyBudgetMisses *Gauge // requests that exceeded the SLO (cumulative)
	PolicyEscalations  *Gauge // escalation stages executed (cumulative)
	PolicyStepDowns    *Gauge // tier step-downs (cumulative)
	PolicyStepUps      *Gauge // tier step-ups (cumulative)

	mu          sync.Mutex
	responses   map[int]*Counter // responses by HTTP status code
	policyRoles map[string]*Gauge
	stageCosts  map[string]*Gauge
	lastCluster ClusterSample // previous cumulative snapshot, for counter deltas
}

// NewMetrics builds a bundle on a fresh registry. maxMembers sizes the
// agreement/activation histograms (one bucket per possible member count);
// values below 2 fall back to the paper's 8-member ceiling.
func NewMetrics(maxMembers int) *Metrics {
	if maxMembers < 2 {
		maxMembers = 8
	}
	r := NewRegistry()
	latency := ExponentialBuckets(0.0005, 2, 14) // 0.5ms .. 4.1s
	m := &Metrics{
		Registry: r,

		Requests:       r.Counter("pgmr_serve_requests_total", "Classify requests accepted by the handler."),
		Rejected:       r.Counter("pgmr_serve_rejected_total", "Classify requests load-shed with 429 because the admission queue was full."),
		InFlight:       r.Gauge("pgmr_serve_in_flight", "Classify requests currently being served."),
		QueueDepth:     r.Gauge("pgmr_serve_queue_depth", "Images waiting in the batcher admission queue."),
		RequestSeconds: r.Histogram("pgmr_serve_request_seconds", "Classify request latency in seconds.", latency),

		Batches:   r.Counter("pgmr_serve_batches_total", "ClassifyBatch calls issued by the dynamic batcher."),
		Coalesced: r.Counter("pgmr_serve_coalesced_batches_total", "Batches that coalesced more than one queued image."),
		Images:    r.Counter("pgmr_serve_images_total", "Images classified through the dynamic batcher."),
		BatchSize: r.Histogram("pgmr_serve_batch_size", "Images per ClassifyBatch call.", ExponentialBuckets(1, 2, 8)),

		Reliable:  r.Counter("pgmr_decisions_total", "Decision outcomes by reliability verdict.", Label{"outcome", "reliable"}),
		Escalated: r.Counter("pgmr_decisions_total", "Decision outcomes by reliability verdict.", Label{"outcome", "escalated"}),
		Agreement: r.Histogram("pgmr_decision_agreement", "Accepted member votes for the winning label.", LinearBuckets(1, 1, maxMembers)),
		Activated: r.Histogram("pgmr_decision_activated", "Member networks consulted per decision (RADE staged activation).", LinearBuckets(1, 1, maxMembers)),

		StreamFrames:   r.Counter("pgmr_stream_frames_total", "Stream frames observed."),
		DeadlineMisses: r.Counter("pgmr_stream_deadline_misses_total", "Stream frames whose latency exceeded the deadline budget."),
		FrameSeconds:   r.Histogram("pgmr_stream_frame_seconds", "Per-frame stream classification latency in seconds.", latency),

		CacheHits:      r.Counter("pgmr_cache_hits_total", "Images served from the prediction cache by the pre-admission probe."),
		CacheMisses:    r.Counter("pgmr_cache_misses_total", "Probed images that missed the prediction cache and entered the admission queue."),
		CacheCoalesced: r.Gauge("pgmr_cache_coalesced", "Inputs served by inflight coalescing or intra-batch dedup (cumulative, mirrored from the cache)."),
		CacheEntries:   r.Gauge("pgmr_cache_entries", "Predictions currently resident in the cache."),
		CacheBytes:     r.Gauge("pgmr_cache_bytes", "Bytes currently charged against the prediction-cache budget."),

		CacheL2Hits:    r.Gauge("pgmr_cache_l2_hits", "Decisions served from the persistent cache tier and promoted to memory (cumulative)."),
		CacheL2Entries: r.Gauge("pgmr_cache_l2_entries", "Live records indexed in the persistent cache tier."),
		CacheL2Bytes:   r.Gauge("pgmr_cache_l2_bytes", "Live record bytes in the persistent cache tier."),
		CacheL2Backlog: r.Gauge("pgmr_cache_l2_backlog", "Write-behind records queued for the persistent tier, not yet flushed."),
		CacheL2Flushed: r.Gauge("pgmr_cache_l2_flushed", "Records made durable by the write-behind flusher (cumulative)."),
		CacheL2Dropped: r.Gauge("pgmr_cache_l2_dropped", "Records dropped by write-behind backpressure or write errors (cumulative)."),

		AbftChecks:        r.Gauge("pgmr_abft_checks", "ABFT checksum comparisons performed (cumulative, mirrored from the system)."),
		AbftDetected:      r.Gauge("pgmr_abft_detected", "ABFT checksum mismatches detected in kernel epilogues (cumulative)."),
		AbftCorrected:     r.Gauge("pgmr_abft_corrected", "Detected faults cleared by bounded re-execution (cumulative)."),
		AbftUncorrectable: r.Gauge("pgmr_abft_uncorrectable", "Detected faults that persisted across re-execution; the member's votes abstained (cumulative)."),

		QueueWait: r.Histogram("pgmr_queue_wait_seconds", "Time images spent in the batcher admission queue before dispatch.", latency),

		ClusterOwned:         r.Counter("pgmr_cluster_owned_total", "Images computed locally as their consistent-hash ring owner."),
		ClusterForwarded:     r.Counter("pgmr_cluster_forwarded_total", "Images answered by their remote ring owner."),
		ClusterFallback:      r.Counter("pgmr_cluster_fallback_total", "Images computed locally because their remote owner was unreachable."),
		ClusterServed:        r.Counter("pgmr_cluster_served_total", "Peer classify requests answered by this node as owner."),
		ClusterForwardErrors: r.Counter("pgmr_cluster_forward_errors_total", "Forward exchanges that failed (timeout, dead peer, rejection)."),
		ClusterPeersUp:       r.Gauge("pgmr_cluster_peers_up", "Remote cluster peers currently accepting traffic (breaker closed)."),
		ClusterPeersTotal:    r.Gauge("pgmr_cluster_peers_total", "Remote cluster peers configured."),
		ClusterConns:         r.Gauge("pgmr_cluster_conns", "Pooled peer connections currently established."),
		ClusterForwardOK:     r.Counter("pgmr_cluster_forward_total", "Forwarded classify exchanges by outcome.", Label{"outcome", "ok"}),
		ClusterForwardFailed: r.Counter("pgmr_cluster_forward_total", "Forwarded classify exchanges by outcome.", Label{"outcome", "error"}),
		ClusterForwardSecs:   r.Histogram("pgmr_cluster_forward_seconds", "Latency of forwarded classify exchanges in seconds.", latency),

		PolicyTier:         r.Gauge("pgmr_policy_tier", "Current SLO-controller degradation tier (0 = static configuration)."),
		PolicyStageDepth:   r.Gauge("pgmr_policy_stage_depth", "Members activated through the last policy-observed stage."),
		PolicyWindowUs:     r.Gauge("pgmr_policy_window_us", "Last batch window planned by the SLO controller, in microseconds."),
		PolicyMaxBatch:     r.Gauge("pgmr_policy_max_batch", "Last max batch size planned by the SLO controller."),
		PolicyBudgetMisses: r.Gauge("pgmr_policy_budget_misses", "Requests whose latency exceeded the SLO budget (cumulative, mirrored)."),
		PolicyEscalations:  r.Gauge("pgmr_policy_escalations", "Escalation stages executed under the policy (cumulative, mirrored)."),
		PolicyStepDowns:    r.Gauge("pgmr_policy_step_downs", "Tier step-downs taken by the SLO controller (cumulative, mirrored)."),
		PolicyStepUps:      r.Gauge("pgmr_policy_step_ups", "Tier step-ups taken by the SLO controller (cumulative, mirrored)."),

		responses:   map[int]*Counter{},
		policyRoles: map[string]*Gauge{},
		stageCosts:  map[string]*Gauge{},
	}
	return m
}

// ObserveAbft refreshes the ABFT verification gauges from the system's
// cumulative counters.
func (m *Metrics) ObserveAbft(checks, detected, corrected, uncorrectable uint64) {
	m.AbftChecks.Set(int64(checks))
	m.AbftDetected.Set(int64(detected))
	m.AbftCorrected.Set(int64(corrected))
	m.AbftUncorrectable.Set(int64(uncorrectable))
}

// CacheProbe carries one pre-admission probe outcome plus the backend
// cache's counters for the mirrored gauges. The L2 fields stay zero for
// memory-only caches, which parks the pgmr_cache_l2_* gauges at zero.
type CacheProbe struct {
	// Hits and Misses are this probe's per-image outcomes.
	Hits, Misses int
	// Mirrored cumulative counters / occupancy from the cache.
	Coalesced uint64
	Entries   int
	Bytes     int64
	// Mirrored persistent-tier counters.
	L2Hits               uint64
	L2Entries            int
	L2Bytes              int64
	L2Backlog            int64
	L2Flushed, L2Dropped uint64
}

// ObserveCacheProbe records one pre-admission cache probe over a request's
// images and refreshes the occupancy gauges from the cache's counters.
func (m *Metrics) ObserveCacheProbe(p CacheProbe) {
	m.CacheHits.Add(uint64(p.Hits))
	m.CacheMisses.Add(uint64(p.Misses))
	m.CacheCoalesced.Set(int64(p.Coalesced))
	m.CacheEntries.Set(int64(p.Entries))
	m.CacheBytes.Set(p.Bytes)
	m.CacheL2Hits.Set(int64(p.L2Hits))
	m.CacheL2Entries.Set(int64(p.L2Entries))
	m.CacheL2Bytes.Set(p.L2Bytes)
	m.CacheL2Backlog.Set(p.L2Backlog)
	m.CacheL2Flushed.Set(int64(p.L2Flushed))
	m.CacheL2Dropped.Set(int64(p.L2Dropped))
}

// ClusterSample is one cumulative snapshot of the cluster routing counters,
// mirrored from the clustered backend after each batch dispatch. Declared
// here (rather than importing internal/cluster) so telemetry stays a leaf
// package.
type ClusterSample struct {
	Owned, Forwarded, Fallback uint64
	Served, ForwardErrors      uint64
	PeersUp, PeersTotal, Conns int
}

// ObserveCluster advances the pgmr_cluster_* counters by the delta between
// this cumulative snapshot and the previous one, and refreshes the peer
// gauges. Counters never move backwards: a snapshot that regresses (e.g.
// after a backend swap) only resets the baseline.
func (m *Metrics) ObserveCluster(s ClusterSample) {
	m.mu.Lock()
	last := m.lastCluster
	m.lastCluster = s
	m.mu.Unlock()
	delta := func(c *Counter, now, prev uint64) {
		if now > prev {
			c.Add(now - prev)
		}
	}
	delta(m.ClusterOwned, s.Owned, last.Owned)
	delta(m.ClusterForwarded, s.Forwarded, last.Forwarded)
	delta(m.ClusterFallback, s.Fallback, last.Fallback)
	delta(m.ClusterServed, s.Served, last.Served)
	delta(m.ClusterForwardErrors, s.ForwardErrors, last.ForwardErrors)
	m.ClusterPeersUp.Set(int64(s.PeersUp))
	m.ClusterPeersTotal.Set(int64(s.PeersTotal))
	m.ClusterConns.Set(int64(s.Conns))
}

// ObserveForward records one forwarded classify exchange — the hook a
// clustered backend's ObserveForward option points at.
func (m *Metrics) ObserveForward(d time.Duration, ok bool) {
	if ok {
		m.ClusterForwardOK.Inc()
	} else {
		m.ClusterForwardFailed.Inc()
	}
	m.ClusterForwardSecs.Observe(d.Seconds())
}

// ObserveDecision ingests one decision outcome: the reliability verdict,
// the accepted-vote count behind it, and how many members ran.
func (m *Metrics) ObserveDecision(reliable bool, agreement, activated int) {
	if reliable {
		m.Reliable.Inc()
	} else {
		m.Escalated.Inc()
	}
	m.Agreement.Observe(float64(agreement))
	m.Activated.Observe(float64(activated))
}

// ObserveFrame ingests one stream frame: the deadline-miss accounting the
// stream package computes (a miss is only possible with a positive budget —
// stream.Frame.DeadlineMiss is never set when Config.Budget is 0) plus the
// frame latency and its decision outcome.
func (m *Metrics) ObserveFrame(f stream.Frame) {
	m.StreamFrames.Inc()
	if f.DeadlineMiss {
		m.DeadlineMisses.Inc()
	}
	m.FrameSeconds.Observe(f.Latency.Seconds())
	m.ObserveDecision(f.Decision.Reliable, f.Decision.Votes[f.Decision.Label], f.Decision.Activated)
}

// ObserveResponse records one finished HTTP classify request.
func (m *Metrics) ObserveResponse(code int, latency time.Duration) {
	m.Response(code).Inc()
	m.RequestSeconds.Observe(latency.Seconds())
}

// Response returns (registering on first use) the response counter for one
// HTTP status code: pgmr_serve_responses_total{code="NNN"}.
func (m *Metrics) Response(code int) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.responses[code]
	if !ok {
		c = m.Registry.Counter("pgmr_serve_responses_total", "Classify responses by HTTP status code.",
			Label{"code", fmt.Sprintf("%d", code)})
		m.responses[code] = c
	}
	return c
}

// PolicyStageCost is one exported cost-model cell: the EWMA per-(image·
// member) latency of a stage on a backend. Declared here (rather than
// importing internal/policy) so telemetry stays a leaf package.
type PolicyStageCost struct {
	Stage   int
	Backend string
	Micros  float64
}

// PolicySample is one snapshot of the SLO controller, mirrored into the
// pgmr_policy_* gauges after each batch dispatch. The server converts the
// controller's own snapshot type into this.
type PolicySample struct {
	Tier         int
	StageDepth   int
	EarlyBackend string
	LateBackend  string
	Window       time.Duration
	MaxBatch     int
	BudgetMisses uint64
	Escalations  uint64
	StepDowns    uint64
	StepUps      uint64
	StageCosts   []PolicyStageCost
}

// ObservePolicy refreshes the pgmr_policy_* gauges from one controller
// snapshot. The chosen-backend series (pgmr_policy_backend{role,backend})
// and per-stage cost EWMAs (pgmr_policy_stage_cost_ns{stage,backend}) are
// registered lazily, like the per-code response counters.
func (m *Metrics) ObservePolicy(p PolicySample) {
	m.PolicyTier.Set(int64(p.Tier))
	m.PolicyStageDepth.Set(int64(p.StageDepth))
	m.PolicyWindowUs.Set(p.Window.Microseconds())
	m.PolicyMaxBatch.Set(int64(p.MaxBatch))
	m.PolicyBudgetMisses.Set(int64(p.BudgetMisses))
	m.PolicyEscalations.Set(int64(p.Escalations))
	m.PolicyStepDowns.Set(int64(p.StepDowns))
	m.PolicyStepUps.Set(int64(p.StepUps))
	m.setPolicyRole("early", p.EarlyBackend)
	m.setPolicyRole("late", p.LateBackend)
	for _, sc := range p.StageCosts {
		m.stageCostGauge(sc.Stage, sc.Backend).Set(int64(sc.Micros * 1000))
	}
}

// setPolicyRole marks which backend a cascade role (early/late) currently
// uses: the chosen pgmr_policy_backend{role,backend} series reads 1, every
// other backend seen for that role reads 0.
func (m *Metrics) setPolicyRole(role, backend string) {
	key := role + "/" + backend
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.policyRoles[key]; !ok {
		m.policyRoles[key] = m.Registry.Gauge("pgmr_policy_backend",
			"Backend currently selected for a cascade role (1 = selected).",
			Label{"role", role}, Label{"backend", backend})
	}
	prefix := role + "/"
	for k, g := range m.policyRoles {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			if k == key {
				g.Set(1)
			} else {
				g.Set(0)
			}
		}
	}
}

// stageCostGauge returns (registering on first use) the per-stage cost gauge
// pgmr_policy_stage_cost_ns{stage="K",backend="B"}: the controller's EWMA
// per-(image·member) latency for that stage, in nanoseconds.
func (m *Metrics) stageCostGauge(stage int, backend string) *Gauge {
	key := fmt.Sprintf("%d/%s", stage, backend)
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.stageCosts[key]
	if !ok {
		g = m.Registry.Gauge("pgmr_policy_stage_cost_ns",
			"EWMA per-image-member stage latency from the SLO controller cost model, in nanoseconds.",
			Label{"stage", fmt.Sprintf("%d", stage)}, Label{"backend", backend})
		m.stageCosts[key] = g
	}
	return g
}

// ObserveBatch records one dynamic batch dispatch.
func (m *Metrics) ObserveBatch(size int) {
	m.Batches.Inc()
	if size > 1 {
		m.Coalesced.Inc()
	}
	m.Images.Add(uint64(size))
	m.BatchSize.Observe(float64(size))
}
