package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/policy"
)

// fakePolicy is an instrumented Policy that returns a fixed batch shape, so
// the tests can verify the batcher consults it per batch and feeds the
// observation hooks back.
type fakePolicy struct {
	window time.Duration
	max    int

	plans     atomic.Int64
	waits     atomic.Int64
	requests  atomic.Int64
	lastDepth atomic.Int64
}

func (p *fakePolicy) PlanBatch(queueDepth int) (time.Duration, int) {
	p.plans.Add(1)
	p.lastDepth.Store(int64(queueDepth))
	return p.window, p.max
}

func (p *fakePolicy) ObserveQueueWait(time.Duration) { p.waits.Add(1) }

func (p *fakePolicy) ObserveRequest(time.Duration) { p.requests.Add(1) }

func (p *fakePolicy) Snapshot() policy.Snapshot {
	return policy.Snapshot{
		Tier:         3,
		TierName:     "fused-f32",
		EarlyBackend: "int8",
		LateBackend:  "f32",
		Window:       p.window,
		MaxBatch:     p.max,
		BudgetMisses: 7,
		Escalations:  11,
		StageCosts:   []policy.StageCost{{Stage: 0, Backend: "int8", Micros: 1.5}},
	}
}

// TestPolicyShapesBatches: with a policy forcing maxBatch=2 and no window,
// the batcher must never hand the backend more than 2 images even though the
// static config would allow 64, must call PlanBatch per batch, and must feed
// queue waits and request latencies back.
func TestPolicyShapesBatches(t *testing.T) {
	fb := newFakeBackend()
	fb.delayNS.Store(int64(time.Millisecond)) // let the queue build between dispatches
	pol := &fakePolicy{window: -1, max: 2}
	_, ts := startServer(t, Config{
		Backend:     fb,
		BatchWindow: 20 * time.Millisecond,
		MaxBatch:    64,
		QueueDepth:  256,
		Policy:      pol,
	})

	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			im := testImage(i)
			resp, _ := postJSON(t, ts.URL, classifyRequest{
				Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: im.Pixels},
			})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := fb.maxBatch.Load(); got > 2 {
		t.Errorf("policy maxBatch=2 but the backend saw a batch of %d", got)
	}
	if pol.plans.Load() == 0 {
		t.Error("PlanBatch was never consulted")
	}
	if got := pol.waits.Load(); got != n {
		t.Errorf("ObserveQueueWait called %d times, want %d", got, n)
	}
	if got := pol.requests.Load(); got != n {
		t.Errorf("ObserveRequest called %d times, want %d", got, n)
	}

	// The policy snapshot must be mirrored into the pgmr_policy_* series,
	// and every dispatched item must land in the queue-wait histogram.
	exp := scrape(t, ts.URL)
	for series, want := range map[string]int{
		"pgmr_policy_tier":          3,
		"pgmr_policy_max_batch":     2,
		"pgmr_policy_budget_misses": 7,
		"pgmr_policy_escalations":   11,
		`pgmr_policy_backend{backend="int8",role="early"}`: 1,
		`pgmr_policy_backend{backend="f32",role="late"}`:   1,
		`pgmr_policy_stage_cost_ns{backend="int8",stage="0"}`: 1500,
		"pgmr_queue_wait_seconds_count":                       n,
	} {
		if got := metricValue(t, exp, series); got != want {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
	}
}

// TestPolicyControllerEndToEnd wires a real policy.Controller through the
// server: with a generous SLO and light load the controller must stay on the
// static tier, count the requests it observed, and keep serving correctly.
func TestPolicyControllerEndToEnd(t *testing.T) {
	fb := newFakeBackend()
	ctl, err := policy.New(policy.Config{
		SLO: 5 * time.Second, Members: 4, Freq: 2, StageBatch: 1,
		BaseWindow: time.Millisecond, BaseMaxBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Config{Backend: fb, Policy: ctl})

	for i := 0; i < 5; i++ {
		im := testImage(i)
		resp, _ := postJSON(t, ts.URL, classifyRequest{
			Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: im.Pixels},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}

	sn := ctl.Snapshot()
	if sn.Tier != 0 || sn.TierName != "static" {
		t.Errorf("unloaded controller on tier %d (%s), want 0 (static)", sn.Tier, sn.TierName)
	}
	if sn.Requests != 5 {
		t.Errorf("controller observed %d requests, want 5", sn.Requests)
	}
	if sn.BudgetMisses != 0 {
		t.Errorf("controller counted %d budget misses under a 5s SLO", sn.BudgetMisses)
	}
	if exp := scrape(t, ts.URL); !strings.Contains(exp, "pgmr_policy_tier 0") {
		t.Error("metrics exposition is missing pgmr_policy_tier")
	}
}

// TestNilPolicyRegistersNoDynamicSeries: without a policy the lazily
// registered per-backend and per-stage series must not appear.
func TestNilPolicyRegistersNoDynamicSeries(t *testing.T) {
	fb := newFakeBackend()
	_, ts := startServer(t, Config{Backend: fb})
	im := testImage(1)
	resp, _ := postJSON(t, ts.URL, classifyRequest{
		Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: im.Pixels},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	exp := scrape(t, ts.URL)
	for _, name := range []string{"pgmr_policy_backend{", "pgmr_policy_stage_cost_ns{"} {
		if strings.Contains(exp, name) {
			t.Errorf("nil-policy exposition contains %s series", name)
		}
	}
	if got := metricValue(t, exp, "pgmr_queue_wait_seconds_count"); got != 1 {
		t.Errorf("pgmr_queue_wait_seconds_count = %d, want 1", got)
	}
}
