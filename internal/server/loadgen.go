package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	polygraph "repro"
)

// LoadConfig parameterizes RunLoad.
type LoadConfig struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Images is the pool of request payloads; requests rotate through it.
	Images []polygraph.Image
	// Concurrency is the number of closed-loop client goroutines.
	// Default 8.
	Concurrency int
	// Requests is the total number of requests to send. Default 200.
	Requests int
	// ImagesPerRequest groups images per request (1 = single-image
	// requests, the batcher's coalescing workload). Default 1.
	ImagesPerRequest int
	// Rate, when positive, switches the generator to open loop: requests
	// are released on a fixed schedule of Rate requests per second,
	// independent of response times — the offered-load mode SLO sweeps
	// need, since a closed loop self-throttles exactly when the server
	// slows down. Concurrency then bounds the in-flight senders; when all
	// are busy, released requests queue and fire late (the schedule never
	// skips). 0 keeps the closed loop.
	Rate float64
	// Warmup excludes the first Warmup requests from the latency
	// percentiles (they still count toward Requests/OK/throughput). Load
	// points that judge steady-state behavior set this to cover ramp-up —
	// connection setup, cache warming, an adaptive controller finding its
	// tier. 0 measures every request.
	Warmup int
	// TimeoutMS, when positive, is sent as the per-request deadline.
	TimeoutMS int
	// Client overrides the HTTP client. Default: http.Client with a 30s
	// timeout.
	Client *http.Client
}

// LoadResult summarizes one load run.
type LoadResult struct {
	Requests int // requests sent
	OK       int // 200 responses
	Rejected int // 429 responses (load shed)
	Failed   int // transport errors and any other status
	Images   int // images successfully classified
	Reliable int // predictions that passed the reliability gate

	Duration     time.Duration
	ImagesPerSec float64

	// Latency percentiles over successful requests past the warmup cut.
	P50, P90, P99, Max time.Duration
}

// String renders a one-look summary.
func (r *LoadResult) String() string {
	return fmt.Sprintf(
		"requests=%d ok=%d rejected=%d failed=%d images=%d reliable=%d wall=%s throughput=%.1f img/s p50=%s p90=%s p99=%s max=%s",
		r.Requests, r.OK, r.Rejected, r.Failed, r.Images, r.Reliable,
		r.Duration.Round(time.Millisecond), r.ImagesPerSec,
		r.P50.Round(time.Microsecond*10), r.P90.Round(time.Microsecond*10),
		r.P99.Round(time.Microsecond*10), r.Max.Round(time.Microsecond*10))
}

// RunLoad drives a serving endpoint with closed-loop concurrent clients and
// returns throughput and latency percentiles — the serving-side counterpart
// of the ext-throughput experiment. 429 responses count as Rejected (the
// admission controller doing its job), not as failures.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("server: LoadConfig.URL is required")
	}
	if len(cfg.Images) == 0 {
		return nil, fmt.Errorf("server: LoadConfig.Images is empty")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 200
	}
	if cfg.ImagesPerRequest <= 0 {
		cfg.ImagesPerRequest = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}

	// Pre-marshal one body per distinct rotation offset so workers do no
	// JSON work on the hot path.
	bodies := make([][]byte, len(cfg.Images))
	for off := range cfg.Images {
		var req classifyRequest
		req.TimeoutMS = cfg.TimeoutMS
		if cfg.ImagesPerRequest == 1 {
			j := toImageJSON(cfg.Images[off])
			req.Image = &j
		} else {
			req.Images = make([]imageJSON, cfg.ImagesPerRequest)
			for i := range req.Images {
				req.Images[i] = toImageJSON(cfg.Images[(off+i)%len(cfg.Images)])
			}
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("server: marshaling load body: %w", err)
		}
		bodies[off] = b
	}

	var (
		next      atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
		res       LoadResult
	)
	url := cfg.URL + "/v1/classify"

	// In open-loop mode a pacer goroutine releases request indices on the
	// fixed schedule; in closed-loop mode workers pull the next index as
	// soon as their previous response lands.
	var tokens chan int
	if cfg.Rate > 0 {
		tokens = make(chan int, cfg.Requests)
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		go func() {
			defer close(tokens)
			t0 := time.Now()
			for n := 0; n < cfg.Requests; n++ {
				due := t0.Add(time.Duration(n) * interval)
				if d := time.Until(due); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
				select {
				case tokens <- n:
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var n int
				if tokens != nil {
					tok, ok := <-tokens
					if !ok || ctx.Err() != nil {
						return
					}
					n = tok
				} else {
					n = int(next.Add(1)) - 1
					if n >= cfg.Requests || ctx.Err() != nil {
						return
					}
				}
				body := bodies[n%len(bodies)]
				t0 := time.Now()
				ok, rejected, images, reliable := fireOne(ctx, client, url, body)
				lat := time.Since(t0)
				mu.Lock()
				res.Requests++
				switch {
				case ok:
					res.OK++
					res.Images += images
					res.Reliable += reliable
					if n >= cfg.Warmup {
						latencies = append(latencies, lat)
					}
				case rejected:
					res.Rejected++
				default:
					res.Failed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Duration = time.Since(start)
	if res.Duration > 0 {
		res.ImagesPerSec = float64(res.Images) / res.Duration.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50 = Percentile(latencies, 0.50)
	res.P90 = Percentile(latencies, 0.90)
	res.P99 = Percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		res.Max = latencies[n-1]
	}
	return &res, nil
}

// fireOne sends one pre-marshaled classify request and reports the outcome.
func fireOne(ctx context.Context, client *http.Client, url string, body []byte) (ok, rejected bool, images, reliable int) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false, false, 0, 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, false, 0, 0
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var cr classifyResponse
		if json.NewDecoder(resp.Body).Decode(&cr) != nil {
			return false, false, 0, 0
		}
		preds := cr.Predictions
		if cr.Prediction != nil {
			preds = append(preds, *cr.Prediction)
		}
		for _, p := range preds {
			if p.Reliable {
				reliable++
			}
		}
		return true, false, len(preds), reliable
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return false, true, 0, 0
	default:
		io.Copy(io.Discard, resp.Body)
		return false, false, 0, 0
	}
}

func toImageJSON(im polygraph.Image) imageJSON {
	return imageJSON{Channels: im.Channels, Height: im.Height, Width: im.Width, Pixels: im.Pixels}
}

// Percentile returns the q-quantile (0 < q ≤ 1) of ascending-sorted
// latencies using the nearest-rank method; 0 for an empty slice.
func Percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
