// Package server is the production serving subsystem: an HTTP JSON API
// that feeds classification requests through a dynamic batcher into
// polygraph.ClassifyBatch, wrapped in the envelope a deployed reliability
// system needs — per-request deadlines honored via context, a bounded
// admission queue with load shedding (429 + Retry-After), graceful drain
// (in-flight requests finish, new ones are rejected), health/readiness
// probes, and a Prometheus-text /metrics endpoint backed by the
// internal/server/telemetry registry.
//
// Endpoints:
//
//	POST /v1/classify  {"image": {...}} or {"images": [...]}, optional "timeout_ms"
//	GET  /healthz      liveness (200 while the process runs)
//	GET  /readyz       readiness (503 once draining)
//	GET  /metrics      Prometheus text exposition
//
// The dynamic batcher coalesces images that arrive within Config.BatchWindow
// (up to Config.MaxBatch) into one ClassifyBatch call, so concurrent
// single-image requests exercise the arena/worker-pool fast path instead of
// paying one Classify each.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	polygraph "repro"
	"repro/internal/policy"
	"repro/internal/server/telemetry"
)

// Backend classifies batches of images — satisfied by *polygraph.System.
type Backend interface {
	ClassifyBatchContext(ctx context.Context, images []polygraph.Image) ([]polygraph.Prediction, error)
	InputShape() (channels, height, width int)
}

// CacheProber is the optional backend surface for the pre-admission
// prediction-cache probe — satisfied by *polygraph.System when Options.Cache
// is set. When the configured Backend implements it, the classify handler
// answers cached images before the admission queue, so hits never consume
// queue slots or batcher capacity and are served even while the queue is
// saturated and shedding load.
type CacheProber interface {
	CacheLookup(im polygraph.Image) (polygraph.Prediction, bool)
	CacheStats() polygraph.CacheStats
}

// AbftReporter is the optional backend surface for ABFT verification
// telemetry — satisfied by *polygraph.System when Options.Verified is set.
// When the configured Backend implements it and reports verification
// enabled, the batcher mirrors the cumulative verification counters into
// the pgmr_abft_* gauges after every dispatch.
type AbftReporter interface {
	Verified() bool
	AbftCounts() polygraph.AbftCounts
}

// ClusterReporter is the optional backend surface for scale-out cluster
// telemetry — satisfied by *polygraph.System when Options.Cluster is set.
// When the configured Backend implements it and reports clustered serving,
// every classify response carries the node's identity in the X-PGMR-Node
// header and the batcher mirrors the routing counters into the
// pgmr_cluster_* series after every dispatch.
type ClusterReporter interface {
	Clustered() bool
	ClusterNodeID() string
	ClusterStats() polygraph.ClusterStats
}

// Policy is the optional SLO batch planner — satisfied by
// *policy.Controller. When set, the batcher asks it for the next batch
// window and size before each collect (feeding it the live queue depth),
// reports per-item queue waits and per-request latencies back, and mirrors
// its snapshot into the pgmr_policy_* gauges after every dispatch.
type Policy interface {
	PlanBatch(queueDepth int) (window time.Duration, maxBatch int)
	ObserveQueueWait(d time.Duration)
	ObserveRequest(latency time.Duration)
	Snapshot() policy.Snapshot
}

// cacheHeader reports the probe outcome per response: "hit" (every image
// answered from the cache), "miss" (none), or "coalesced" (a mix — the
// cached part rode along with the computed remainder). Absent when the
// backend has no cache.
const cacheHeader = "X-PGMR-Cache"

// nodeHeader names the cluster node that answered the request (the entry
// node — forwarded images still return through it). Absent when the backend
// is not clustered.
const nodeHeader = "X-PGMR-Node"

// Config parameterizes New. The zero value of every field except Backend is
// usable; see the field comments for defaults.
type Config struct {
	// Backend is the classification system behind the API. Required.
	Backend Backend
	// BatchWindow is how long the batcher waits, after the first queued
	// image, for more images to coalesce. Negative batches only what is
	// already queued without waiting; 0 selects the 5ms default.
	BatchWindow time.Duration
	// MaxBatch caps images per ClassifyBatch call. Default 64.
	MaxBatch int
	// QueueDepth bounds the admission queue in images; requests that would
	// overflow it are shed with 429. Default 256.
	QueueDepth int
	// MaxImagesPerRequest caps the images field of one request (413 above
	// it). Default 64.
	MaxImagesPerRequest int
	// DefaultDeadline applies to requests that carry no timeout_ms.
	// 0 means no server-imposed deadline. Default 30s.
	DefaultDeadline time.Duration
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds the request body. Default 64 MiB.
	MaxBodyBytes int64
	// Metrics receives everything the server observes. Default: a fresh
	// telemetry.NewMetrics(8) bundle.
	Metrics *telemetry.Metrics
	// Policy, when non-nil, supplies the batch window and max batch per
	// collect instead of the static BatchWindow/MaxBatch, and receives the
	// latency and queue-wait feedback it steers by. nil serves with the
	// static configuration.
	Policy Policy
}

func (c Config) withDefaults() Config {
	if c.BatchWindow == 0 {
		c.BatchWindow = 5 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxImagesPerRequest <= 0 {
		c.MaxImagesPerRequest = 64
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewMetrics(8)
	}
	return c
}

// Server is a running serving subsystem: handlers plus the batcher
// goroutine. Create with New, expose via Handler, stop with Drain.
type Server struct {
	cfg     Config
	metrics *telemetry.Metrics

	queue chan *item
	depth atomic.Int64 // reserved queue slots, ≤ cfg.QueueDepth

	draining    atomic.Bool
	inflight    sync.WaitGroup
	stop        chan struct{}
	stopOnce    sync.Once
	batcherDone chan struct{}
}

// New validates the config and starts the batcher.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("server: Config.Backend is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		metrics:     cfg.Metrics,
		queue:       make(chan *item, cfg.QueueDepth),
		stop:        make(chan struct{}),
		batcherDone: make(chan struct{}),
	}
	go s.runBatcher()
	return s, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/classify", s.handleClassify)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.Handle("/metrics", s.metrics.Registry.Handler())
	return mux
}

// BeginDrain flips the server into draining mode: /readyz turns 503 and new
// classify requests are rejected, while requests already admitted keep
// running. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain gracefully shuts the subsystem down: BeginDrain, wait for every
// in-flight request to finish (bounded by ctx), then stop the batcher. It
// returns ctx.Err() when the wait is cut short — in-flight work may then
// still be running.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.stopOnce.Do(func() { close(s.stop) })
	select {
	case <-s.batcherDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	return nil
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// API payloads.

type imageJSON struct {
	Channels int       `json:"channels"`
	Height   int       `json:"height"`
	Width    int       `json:"width"`
	Pixels   []float64 `json:"pixels"`
}

func (j imageJSON) image() polygraph.Image {
	return polygraph.Image{Channels: j.Channels, Height: j.Height, Width: j.Width, Pixels: j.Pixels}
}

type classifyRequest struct {
	// Image carries a single-image request; Images a multi-image one.
	// Exactly one of the two must be set.
	Image  *imageJSON  `json:"image,omitempty"`
	Images []imageJSON `json:"images,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds; 0 selects the
	// server's default deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

type predictionJSON struct {
	Label      int     `json:"label"`
	Reliable   bool    `json:"reliable"`
	Confidence float64 `json:"confidence"`
	Activated  int     `json:"activated"`
	Agreement  int     `json:"agreement"`
}

func toPredictionJSON(p polygraph.Prediction) predictionJSON {
	return predictionJSON{
		Label: p.Label, Reliable: p.Reliable, Confidence: p.Confidence,
		Activated: p.Activated, Agreement: p.Agreement,
	}
}

type classifyResponse struct {
	Prediction  *predictionJSON  `json:"prediction,omitempty"`
	Predictions []predictionJSON `json:"predictions,omitempty"`
	ElapsedMS   float64          `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// handleClassify is the admission-controlled, deadline-aware entry point of
// the classify API.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	respond := func(code int, payload any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(payload)
		latency := time.Since(start)
		s.metrics.ObserveResponse(code, latency)
		if s.cfg.Policy != nil {
			s.cfg.Policy.ObserveRequest(latency)
		}
	}
	fail := func(code int, format string, args ...any) {
		respond(code, errorResponse{Error: fmt.Sprintf(format, args...)})
	}

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		fail(http.StatusMethodNotAllowed, "use POST")
		return
	}

	// Admission gate 1: drain mode. The in-flight count is raised before
	// the flag is read, so Drain's Wait can never miss a request that saw
	// the flag unset.
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.draining.Load() {
		fail(http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.metrics.Requests.Inc()
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	if cr, ok := s.cfg.Backend.(ClusterReporter); ok && cr.Clustered() {
		w.Header().Set(nodeHeader, cr.ClusterNodeID())
	}

	var req classifyRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		fail(http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	single := req.Image != nil
	if single && len(req.Images) > 0 {
		fail(http.StatusBadRequest, `set "image" or "images", not both`)
		return
	}
	images := req.Images
	if single {
		images = []imageJSON{*req.Image}
	}
	if len(images) == 0 {
		fail(http.StatusBadRequest, "request carries no images")
		return
	}
	if len(images) > s.cfg.MaxImagesPerRequest {
		fail(http.StatusRequestEntityTooLarge, "%d images exceed the per-request limit of %d",
			len(images), s.cfg.MaxImagesPerRequest)
		return
	}
	wantC, wantH, wantW := s.cfg.Backend.InputShape()
	ims := make([]polygraph.Image, len(images))
	for i, j := range images {
		im := j.image()
		if err := im.Validate(); err != nil {
			fail(http.StatusBadRequest, "image %d: %v", i, err)
			return
		}
		if im.Channels != wantC || im.Height != wantH || im.Width != wantW {
			fail(http.StatusBadRequest, "image %d: shape %dx%dx%d does not match the served model input %dx%dx%d",
				i, im.Channels, im.Height, im.Width, wantC, wantH, wantW)
			return
		}
		ims[i] = im
	}

	// Pre-admission cache probe: cached images are answered here, before
	// any queue slot is reserved, so repeated traffic cannot displace new
	// work — and a fully cached request is served even when the admission
	// queue is saturated.
	preds := make([]predictionJSON, len(ims))
	served := make([]bool, len(ims))
	hits := 0
	if prober, ok := s.cfg.Backend.(CacheProber); ok {
		for i, im := range ims {
			if p, ok := prober.CacheLookup(im); ok {
				preds[i] = toPredictionJSON(p)
				served[i] = true
				hits++
				s.metrics.ObserveDecision(p.Reliable, p.Agreement, p.Activated)
			}
		}
		st := prober.CacheStats()
		s.metrics.ObserveCacheProbe(telemetry.CacheProbe{
			Hits:      hits,
			Misses:    len(ims) - hits,
			Coalesced: st.Coalesced,
			Entries:   st.Entries,
			Bytes:     st.Bytes,
			L2Hits:    st.L2Hits,
			L2Entries: st.L2Entries,
			L2Bytes:   st.L2Bytes,
			L2Backlog: st.L2Backlog,
			L2Flushed: st.L2Flushed,
			L2Dropped: st.L2Dropped,
		})
		switch {
		case hits == len(ims):
			w.Header().Set(cacheHeader, "hit")
		case hits > 0:
			w.Header().Set(cacheHeader, "coalesced")
		default:
			w.Header().Set(cacheHeader, "miss")
		}
	}
	if hits == len(ims) {
		resp := classifyResponse{ElapsedMS: float64(time.Since(start).Microseconds()) / 1000}
		if single {
			resp.Prediction = &preds[0]
		} else {
			resp.Predictions = preds
		}
		respond(http.StatusOK, resp)
		return
	}

	// Per-request deadline.
	ctx := r.Context()
	timeout := s.cfg.DefaultDeadline
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Admission gate 2: bounded queue with load shedding. Slots are
	// reserved atomically for the request's uncached remainder, so a
	// multi-image request is admitted all-or-nothing and the channel send
	// below can never block. Cache hits were answered above and consume
	// nothing here.
	k := int64(len(ims) - hits)
	if depth := s.depth.Add(k); depth > int64(s.cfg.QueueDepth) {
		s.depth.Add(-k)
		s.metrics.Rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		fail(http.StatusTooManyRequests, "admission queue full (%d images)", s.cfg.QueueDepth)
		return
	}
	s.metrics.QueueDepth.Set(s.depth.Load())

	items := make([]*item, 0, k)
	idxs := make([]int, 0, k)
	for i, im := range ims {
		if served[i] {
			continue
		}
		it := &item{img: im, ctx: ctx, enq: time.Now(), done: make(chan itemResult, 1)}
		items = append(items, it)
		idxs = append(idxs, i)
		s.queue <- it
	}

	// Collect results in request order.
	for j, it := range items {
		i := idxs[j]
		select {
		case res := <-it.done:
			if res.err != nil {
				fail(statusFor(res.err), "image %d: %v", i, res.err)
				return
			}
			preds[i] = toPredictionJSON(res.pred)
		case <-ctx.Done():
			fail(statusFor(ctx.Err()), "image %d: %v", i, ctx.Err())
			return
		}
	}

	resp := classifyResponse{ElapsedMS: float64(time.Since(start).Microseconds()) / 1000}
	if single {
		resp.Prediction = &preds[0]
	} else {
		resp.Predictions = preds
	}
	respond(http.StatusOK, resp)
}

// policySample converts a controller snapshot into the telemetry mirror
// type (telemetry is a leaf package and cannot import internal/policy).
func policySample(sn policy.Snapshot) telemetry.PolicySample {
	ps := telemetry.PolicySample{
		Tier:         sn.Tier,
		StageDepth:   sn.StageDepth,
		EarlyBackend: sn.EarlyBackend,
		LateBackend:  sn.LateBackend,
		Window:       sn.Window,
		MaxBatch:     sn.MaxBatch,
		BudgetMisses: sn.BudgetMisses,
		Escalations:  sn.Escalations,
		StepDowns:    sn.StepDowns,
		StepUps:      sn.StepUps,
	}
	for _, sc := range sn.StageCosts {
		ps.StageCosts = append(ps.StageCosts, telemetry.PolicyStageCost{
			Stage: sc.Stage, Backend: sc.Backend, Micros: sc.Micros,
		})
	}
	return ps
}

// statusFor maps classification errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away or the server is shutting down.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
