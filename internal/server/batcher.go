package server

import (
	"context"
	"errors"
	"time"

	polygraph "repro"
	"repro/internal/server/telemetry"
)

// item is one image queued for classification, plus the channel its
// request handler is waiting on.
type item struct {
	img  polygraph.Image
	ctx  context.Context
	enq  time.Time       // when the item entered the admission queue
	done chan itemResult // buffered(1): the batcher never blocks delivering
}

type itemResult struct {
	pred polygraph.Prediction
	err  error
}

// errServerStopped is delivered to items still queued when the batcher is
// told to stop (only possible when their handlers already gave up).
var errServerStopped = errors.New("server: stopped before the image was classified")

// runBatcher is the single goroutine that turns the admission queue into
// ClassifyBatch calls: it blocks for the first queued image, coalesces
// whatever else arrives within BatchWindow (up to MaxBatch), and dispatches
// the batch to the backend. One goroutine is enough — the parallelism lives
// inside ClassifyBatch's worker pool, and a single consumer keeps batch
// formation free of cross-goroutine coordination.
func (s *Server) runBatcher() {
	defer close(s.batcherDone)
	// One timer serves every batch: collect re-arms it per window instead of
	// allocating a fresh timer (and its runtime bookkeeping) per batch. The
	// invariant across collect calls is "stopped with a drained channel".
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		var first *item
		select {
		case first = <-s.queue:
		case <-s.stop:
			s.failLeftovers()
			return
		}
		batch := s.collect(first, timer)
		s.release(len(batch))
		s.dispatch(batch)
		if s.cfg.Policy != nil {
			s.metrics.ObservePolicy(policySample(s.cfg.Policy.Snapshot()))
		}
	}
}

// collect gathers a batch starting from first: up to maxBatch images, not
// waiting longer than window past the first. The shape comes from the SLO
// policy when one is configured (fed the live queue depth, which still
// counts first's reserved slot), otherwise from the static config. timer
// arrives stopped-and-drained and is returned the same way.
func (s *Server) collect(first *item, timer *time.Timer) []*item {
	window, maxBatch := s.cfg.BatchWindow, s.cfg.MaxBatch
	if s.cfg.Policy != nil {
		window, maxBatch = s.cfg.Policy.PlanBatch(int(s.depth.Load()))
		if maxBatch < 1 {
			maxBatch = 1
		}
	}
	batch := append(make([]*item, 0, maxBatch), first)
	if window <= 0 {
		// No waiting: take only what is already queued.
		for len(batch) < maxBatch {
			select {
			case it := <-s.queue:
				batch = append(batch, it)
			default:
				return batch
			}
		}
		return batch
	}
	timer.Reset(window)
	for len(batch) < maxBatch {
		select {
		case it := <-s.queue:
			batch = append(batch, it)
		case <-timer.C:
			// The timer fired and its channel is drained — already back in
			// the invariant state.
			return batch
		}
	}
	// Filled to maxBatch before the window closed: disarm the timer,
	// draining the channel if it fired concurrently.
	if !timer.Stop() {
		<-timer.C
	}
	return batch
}

// release returns n reserved admission slots.
func (s *Server) release(n int) {
	s.metrics.QueueDepth.Set(s.depth.Add(-int64(n)))
}

// dispatch classifies one coalesced batch. Items whose context is already
// done are answered with their context error without being classified; the
// rest share one ClassifyBatchContext call whose context carries the
// latest deadline among them, so the RADE cancellation plumbing in
// internal/core stops member evaluation once nobody is left waiting.
func (s *Server) dispatch(batch []*item) {
	live := batch[:0]
	for _, it := range batch {
		wait := time.Since(it.enq)
		s.metrics.QueueWait.Observe(wait.Seconds())
		if s.cfg.Policy != nil {
			s.cfg.Policy.ObserveQueueWait(wait)
		}
		if err := it.ctx.Err(); err != nil {
			it.done <- itemResult{err: err}
			continue
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return
	}

	bctx, cancel := batchContext(live)
	defer cancel()

	images := make([]polygraph.Image, len(live))
	for i, it := range live {
		images[i] = it.img
	}
	s.metrics.ObserveBatch(len(images))
	preds, err := s.cfg.Backend.ClassifyBatchContext(bctx, images)
	if err != nil {
		for _, it := range live {
			// Prefer the item's own context error so a request that
			// exceeded its deadline reports DeadlineExceeded, not the
			// batch-level abort.
			if ierr := it.ctx.Err(); ierr != nil {
				it.done <- itemResult{err: ierr}
			} else {
				it.done <- itemResult{err: err}
			}
		}
		return
	}
	for i, it := range live {
		s.metrics.ObserveDecision(preds[i].Reliable, preds[i].Agreement, preds[i].Activated)
		it.done <- itemResult{pred: preds[i]}
	}
	if rep, ok := s.cfg.Backend.(AbftReporter); ok && rep.Verified() {
		c := rep.AbftCounts()
		s.metrics.ObserveAbft(c.Checks, c.Detected, c.Corrected, c.Uncorrectable)
	}
	if cr, ok := s.cfg.Backend.(ClusterReporter); ok && cr.Clustered() {
		st := cr.ClusterStats()
		s.metrics.ObserveCluster(telemetry.ClusterSample{
			Owned:         st.Owned,
			Forwarded:     st.Forwarded,
			Fallback:      st.Fallback,
			Served:        st.Served,
			ForwardErrors: st.ForwardErrors,
			PeersUp:       st.PeersUp,
			PeersTotal:    st.PeersTotal,
			Conns:         st.Conns,
		})
	}
}

// batchContext derives the context for one backend call: when every item
// carries a deadline, the batch runs under the latest of them (earlier
// items time out at their own handlers); otherwise the batch is unbounded.
func batchContext(live []*item) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, it := range live {
		d, ok := it.ctx.Deadline()
		if !ok {
			return context.Background(), func() {}
		}
		if d.After(latest) {
			latest = d
		}
	}
	return context.WithDeadline(context.Background(), latest)
}

// failLeftovers answers any items still queued at stop time. Drain only
// closes the stop channel after every in-flight request finished, so
// leftovers can only belong to handlers that already timed out.
func (s *Server) failLeftovers() {
	for {
		select {
		case it := <-s.queue:
			s.release(1)
			it.done <- itemResult{err: errServerStopped}
		default:
			return
		}
	}
}
