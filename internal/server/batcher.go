package server

import (
	"context"
	"errors"
	"time"

	polygraph "repro"
)

// item is one image queued for classification, plus the channel its
// request handler is waiting on.
type item struct {
	img  polygraph.Image
	ctx  context.Context
	done chan itemResult // buffered(1): the batcher never blocks delivering
}

type itemResult struct {
	pred polygraph.Prediction
	err  error
}

// errServerStopped is delivered to items still queued when the batcher is
// told to stop (only possible when their handlers already gave up).
var errServerStopped = errors.New("server: stopped before the image was classified")

// runBatcher is the single goroutine that turns the admission queue into
// ClassifyBatch calls: it blocks for the first queued image, coalesces
// whatever else arrives within BatchWindow (up to MaxBatch), and dispatches
// the batch to the backend. One goroutine is enough — the parallelism lives
// inside ClassifyBatch's worker pool, and a single consumer keeps batch
// formation free of cross-goroutine coordination.
func (s *Server) runBatcher() {
	defer close(s.batcherDone)
	for {
		var first *item
		select {
		case first = <-s.queue:
		case <-s.stop:
			s.failLeftovers()
			return
		}
		batch := s.collect(first)
		s.release(len(batch))
		s.dispatch(batch)
	}
}

// collect gathers a batch starting from first: up to MaxBatch images, not
// waiting longer than BatchWindow past the first.
func (s *Server) collect(first *item) []*item {
	batch := append(make([]*item, 0, s.cfg.MaxBatch), first)
	if s.cfg.BatchWindow <= 0 {
		// No waiting: take only what is already queued.
		for len(batch) < s.cfg.MaxBatch {
			select {
			case it := <-s.queue:
				batch = append(batch, it)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case it := <-s.queue:
			batch = append(batch, it)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// release returns n reserved admission slots.
func (s *Server) release(n int) {
	s.metrics.QueueDepth.Set(s.depth.Add(-int64(n)))
}

// dispatch classifies one coalesced batch. Items whose context is already
// done are answered with their context error without being classified; the
// rest share one ClassifyBatchContext call whose context carries the
// latest deadline among them, so the RADE cancellation plumbing in
// internal/core stops member evaluation once nobody is left waiting.
func (s *Server) dispatch(batch []*item) {
	live := batch[:0]
	for _, it := range batch {
		if err := it.ctx.Err(); err != nil {
			it.done <- itemResult{err: err}
			continue
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return
	}

	bctx, cancel := batchContext(live)
	defer cancel()

	images := make([]polygraph.Image, len(live))
	for i, it := range live {
		images[i] = it.img
	}
	s.metrics.ObserveBatch(len(images))
	preds, err := s.cfg.Backend.ClassifyBatchContext(bctx, images)
	if err != nil {
		for _, it := range live {
			// Prefer the item's own context error so a request that
			// exceeded its deadline reports DeadlineExceeded, not the
			// batch-level abort.
			if ierr := it.ctx.Err(); ierr != nil {
				it.done <- itemResult{err: ierr}
			} else {
				it.done <- itemResult{err: err}
			}
		}
		return
	}
	for i, it := range live {
		s.metrics.ObserveDecision(preds[i].Reliable, preds[i].Agreement, preds[i].Activated)
		it.done <- itemResult{pred: preds[i]}
	}
	if rep, ok := s.cfg.Backend.(AbftReporter); ok && rep.Verified() {
		c := rep.AbftCounts()
		s.metrics.ObserveAbft(c.Checks, c.Detected, c.Corrected, c.Uncorrectable)
	}
}

// batchContext derives the context for one backend call: when every item
// carries a deadline, the batch runs under the latest of them (earlier
// items time out at their own handlers); otherwise the batch is unbounded.
func batchContext(live []*item) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, it := range live {
		d, ok := it.ctx.Deadline()
		if !ok {
			return context.Background(), func() {}
		}
		if d.After(latest) {
			latest = d
		}
	}
	return context.WithDeadline(context.Background(), latest)
}

// failLeftovers answers any items still queued at stop time. Drain only
// closes the stop channel after every in-flight request finished, so
// leftovers can only belong to handlers that already timed out.
func (s *Server) failLeftovers() {
	for {
		select {
		case it := <-s.queue:
			s.release(1)
			it.done <- itemResult{err: errServerStopped}
		default:
			return
		}
	}
}
