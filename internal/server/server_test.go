package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	polygraph "repro"
)

// fakeBackend is a deterministic, instrumented Backend: the prediction is a
// pure function of the image's first pixel, so the test can compute the
// "direct Classify" answer for any image without a trained system.
type fakeBackend struct {
	delayNS  atomic.Int64  // per-call sleep
	gated    atomic.Bool   // when set, calls block on gate (or ctx)
	gate     chan struct{} // closed by tests to release gated calls
	entered  chan struct{} // signaled (non-blocking) at each call start
	calls    atomic.Int64
	maxBatch atomic.Int64
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
}

func (f *fakeBackend) InputShape() (int, int, int) { return 1, 2, 2 }

func (f *fakeBackend) predict(im polygraph.Image) polygraph.Prediction {
	seed := im.Pixels[0]
	return polygraph.Prediction{
		Label:      int(seed*1000) % 7,
		Reliable:   int(seed*1000)%2 == 0,
		Confidence: seed,
		Activated:  1 + int(seed*100)%4,
		Agreement:  1 + int(seed*10)%3,
	}
}

func (f *fakeBackend) ClassifyBatchContext(ctx context.Context, images []polygraph.Image) ([]polygraph.Prediction, error) {
	f.calls.Add(1)
	for {
		max := f.maxBatch.Load()
		if int64(len(images)) <= max || f.maxBatch.CompareAndSwap(max, int64(len(images))) {
			break
		}
	}
	select {
	case f.entered <- struct{}{}:
	default:
	}
	if f.gated.Load() {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if d := f.delayNS.Load(); d > 0 {
		select {
		case <-time.After(time.Duration(d)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	preds := make([]polygraph.Prediction, len(images))
	for i, im := range images {
		preds[i] = f.predict(im)
	}
	return preds, nil
}

func testImage(seed int) polygraph.Image {
	v := float64(seed%997) / 997
	return polygraph.Image{Channels: 1, Height: 2, Width: 2, Pixels: []float64{v, v, v, v}}
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, payload any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// metricValue extracts one series value from a Prometheus text exposition.
func metricValue(t *testing.T, exposition, series string) int {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(series) + " ([0-9]+)$")
	m := re.FindStringSubmatch(exposition)
	if m == nil {
		return 0
	}
	v, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatalf("metric %s: %v", series, err)
	}
	return v
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServeConcurrentBatchedIntegration is the acceptance-criteria
// integration test: ≥64 concurrent requests through the dynamic batcher,
// checking (a) every response equals the direct backend prediction, (b) at
// least one coalesced batch of size > 1 formed, (c) /metrics agrees with
// the load, and (d) drain completes in-flight requests then refuses new
// ones.
func TestServeConcurrentBatchedIntegration(t *testing.T) {
	fb := newFakeBackend()
	fb.delayNS.Store(int64(2 * time.Millisecond)) // give the window time to coalesce
	s, ts := startServer(t, Config{
		Backend:     fb,
		BatchWindow: 10 * time.Millisecond,
		MaxBatch:    32,
		QueueDepth:  512,
	})

	const n = 80
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			im := testImage(i)
			req := classifyRequest{Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: im.Pixels}}
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				errs <- fmt.Errorf("request %d: status %d: %s", i, resp.StatusCode, b)
				return
			}
			var cr classifyResponse
			if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
				errs <- err
				return
			}
			if cr.Prediction == nil {
				errs <- fmt.Errorf("request %d: no prediction", i)
				return
			}
			// (a) identical to the direct call.
			want := toPredictionJSON(fb.predict(im))
			if !reflect.DeepEqual(*cr.Prediction, want) {
				errs <- fmt.Errorf("request %d: got %+v, want %+v", i, *cr.Prediction, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// (b) the batcher coalesced.
	if fb.maxBatch.Load() <= 1 {
		t.Errorf("no coalesced batch formed: max batch size %d", fb.maxBatch.Load())
	}

	// (c) /metrics is consistent with the load.
	exp := scrape(t, ts.URL)
	if v := metricValue(t, exp, "pgmr_serve_requests_total"); v != n {
		t.Errorf("requests_total = %d, want %d", v, n)
	}
	if v := metricValue(t, exp, `pgmr_serve_responses_total{code="200"}`); v != n {
		t.Errorf(`responses_total{code="200"} = %d, want %d`, v, n)
	}
	if v := metricValue(t, exp, "pgmr_serve_images_total"); v != n {
		t.Errorf("images_total = %d, want %d", v, n)
	}
	batches := metricValue(t, exp, "pgmr_serve_batches_total")
	if batches != int(fb.calls.Load()) {
		t.Errorf("batches_total = %d, backend saw %d calls", batches, fb.calls.Load())
	}
	if batches >= n {
		t.Errorf("batches_total = %d for %d images: nothing coalesced", batches, n)
	}
	if v := metricValue(t, exp, "pgmr_serve_coalesced_batches_total"); v < 1 {
		t.Errorf("coalesced_batches_total = %d, want >= 1", v)
	}
	reliable := metricValue(t, exp, `pgmr_decisions_total{outcome="reliable"}`)
	escalated := metricValue(t, exp, `pgmr_decisions_total{outcome="escalated"}`)
	if reliable+escalated != n {
		t.Errorf("decision outcomes %d+%d != %d images", reliable, escalated, n)
	}

	// (d) SIGTERM-style shutdown: block the backend, admit one request,
	// start draining — the admitted request must finish, new ones must be
	// refused, and Drain must return once the straggler completes.
	fb.delayNS.Store(0)
	fb.gated.Store(true)
	for len(fb.entered) > 0 { // clear stale signals from the load phase
		<-fb.entered
	}
	inFlight := make(chan *http.Response, 1)
	go func() {
		req := classifyRequest{Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: testImage(7).Pixels}}
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			inFlight <- nil
			return
		}
		inFlight <- resp
	}()
	select {
	case <-fb.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never reached the backend")
	}

	s.BeginDrain()
	if resp, body := postJSON(t, ts.URL, classifyRequest{Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: testImage(8).Pixels}}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining server accepted a new request: %d %s", resp.StatusCode, body)
	}
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz while draining: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	close(fb.gate) // release the straggler
	resp := <-inFlight
	if resp == nil {
		t.Fatal("in-flight request failed")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Errorf("in-flight request during drain: status %d: %s", resp.StatusCode, b)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("Drain: %v", err)
	}
}

// TestMultiImageRequest checks the images field: order-aligned predictions
// identical to per-image direct calls.
func TestMultiImageRequest(t *testing.T) {
	fb := newFakeBackend()
	_, ts := startServer(t, Config{Backend: fb, BatchWindow: -1})

	req := classifyRequest{}
	var want []predictionJSON
	for i := 0; i < 5; i++ {
		im := testImage(100 + i)
		req.Images = append(req.Images, imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: im.Pixels})
		want = append(want, toPredictionJSON(fb.predict(im)))
	}
	resp, body := postJSON(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr classifyResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cr.Predictions, want) {
		t.Errorf("predictions %+v != direct %+v", cr.Predictions, want)
	}
}

// TestRequestDeadline checks timeout_ms produces 504 when the backend
// cannot answer in time, via the context plumbed into the batch call.
func TestRequestDeadline(t *testing.T) {
	fb := newFakeBackend()
	fb.gated.Store(true)
	defer close(fb.gate)
	_, ts := startServer(t, Config{Backend: fb, BatchWindow: -1})

	req := classifyRequest{
		Image:     &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: testImage(3).Pixels},
		TimeoutMS: 30,
	}
	resp, body := postJSON(t, ts.URL, req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d (%s), want 504", resp.StatusCode, body)
	}
}

// TestAdmissionControl checks the bounded queue sheds load with 429 and a
// Retry-After hint once QueueDepth is exhausted.
func TestAdmissionControl(t *testing.T) {
	fb := newFakeBackend()
	fb.gated.Store(true)
	s, ts := startServer(t, Config{Backend: fb, BatchWindow: -1, QueueDepth: 1})

	send := func(seed int, out chan<- *http.Response) {
		req := classifyRequest{Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: testImage(seed).Pixels}}
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			out <- nil
			return
		}
		out <- resp
	}

	// First request: picked up by the batcher, stuck at the gate.
	r1 := make(chan *http.Response, 1)
	go send(1, r1)
	select {
	case <-fb.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the backend")
	}
	// Second request: occupies the single admission slot.
	r2 := make(chan *http.Response, 1)
	go send(2, r2)
	deadline := time.Now().Add(5 * time.Second)
	for s.depth.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never occupied the queue")
		}
		time.Sleep(time.Millisecond)
	}
	// Third request: shed.
	resp, body := postJSON(t, ts.URL, classifyRequest{Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: testImage(3).Pixels}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(fb.gate)
	for _, ch := range []chan *http.Response{r1, r2} {
		select {
		case resp := <-ch:
			if resp == nil {
				t.Fatal("queued request failed")
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("queued request finished with %d", resp.StatusCode)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued request never finished after the gate opened")
		}
	}
	exp := scrape(t, ts.URL)
	if v := metricValue(t, exp, "pgmr_serve_rejected_total"); v != 1 {
		t.Errorf("rejected_total = %d, want 1", v)
	}
}

// TestBadRequests covers the input-validation envelope.
func TestBadRequests(t *testing.T) {
	fb := newFakeBackend()
	_, ts := startServer(t, Config{Backend: fb, BatchWindow: -1, MaxImagesPerRequest: 2})

	get, err := http.Get(ts.URL + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/classify = %d, want 405", get.StatusCode)
	}

	raw, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid JSON = %d, want 400", raw.StatusCode)
	}

	ok := imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: testImage(1).Pixels}
	cases := []struct {
		name string
		req  classifyRequest
		want int
	}{
		{"no images", classifyRequest{}, http.StatusBadRequest},
		{"image and images", classifyRequest{Image: &ok, Images: []imageJSON{ok}}, http.StatusBadRequest},
		{"bad buffer", classifyRequest{Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: []float64{1}}}, http.StatusBadRequest},
		{"wrong shape", classifyRequest{Image: &imageJSON{Channels: 3, Height: 2, Width: 2, Pixels: make([]float64, 12)}}, http.StatusBadRequest},
		{"too many images", classifyRequest{Images: []imageJSON{ok, ok, ok}}, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL, tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, body, tc.want)
		}
	}
}

// TestLoadGenerator smoke-tests RunLoad against a live server: every
// request succeeds and the percentiles are ordered.
func TestLoadGenerator(t *testing.T) {
	fb := newFakeBackend()
	_, ts := startServer(t, Config{Backend: fb, BatchWindow: 2 * time.Millisecond, QueueDepth: 1024})

	images := make([]polygraph.Image, 16)
	for i := range images {
		images[i] = testImage(i)
	}
	res, err := RunLoad(context.Background(), LoadConfig{
		URL: ts.URL, Images: images, Concurrency: 8, Requests: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 120 || res.OK != 120 || res.Failed != 0 {
		t.Errorf("load result %+v", res)
	}
	if res.Images != 120 {
		t.Errorf("images = %d, want 120", res.Images)
	}
	if res.P50 > res.P90 || res.P90 > res.P99 || res.P99 > res.Max {
		t.Errorf("unordered percentiles: %s", res)
	}
	if res.ImagesPerSec <= 0 {
		t.Errorf("throughput %v", res.ImagesPerSec)
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(lat, 0.5); p != 5 {
		t.Errorf("p50 = %d, want 5", p)
	}
	if p := Percentile(lat, 1); p != 10 {
		t.Errorf("p100 = %d, want 10", p)
	}
	if p := Percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %d", p)
	}
}
