package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	polygraph "repro"
)

// fakeCachingBackend augments fakeBackend with the CacheProber surface: a
// map-backed prediction cache filled by every successful batch, the way
// *polygraph.System behaves with Options.Cache set.
type fakeCachingBackend struct {
	*fakeBackend
	mu       sync.Mutex
	cache    map[string]polygraph.Prediction
	hits     uint64
	misses   uint64
	computed int // images that actually reached the ensemble
}

func newFakeCachingBackend() *fakeCachingBackend {
	return &fakeCachingBackend{fakeBackend: newFakeBackend(), cache: map[string]polygraph.Prediction{}}
}

func cacheKeyOf(im polygraph.Image) string { return fmt.Sprint(im.Pixels) }

func (f *fakeCachingBackend) CacheLookup(im polygraph.Image) (polygraph.Prediction, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p, ok := f.cache[cacheKeyOf(im)]
	if ok {
		f.hits++
	} else {
		f.misses++
	}
	return p, ok
}

func (f *fakeCachingBackend) CacheStats() polygraph.CacheStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return polygraph.CacheStats{
		Hits: f.hits, Misses: f.misses,
		Entries: len(f.cache), Bytes: int64(64 * len(f.cache)),
	}
}

func (f *fakeCachingBackend) ClassifyBatchContext(ctx context.Context, images []polygraph.Image) ([]polygraph.Prediction, error) {
	preds, err := f.fakeBackend.ClassifyBatchContext(ctx, images)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.computed += len(images)
	for i, im := range images {
		f.cache[cacheKeyOf(im)] = preds[i]
	}
	f.mu.Unlock()
	return preds, nil
}

func (f *fakeCachingBackend) computedImages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.computed
}

// TestCacheHeader covers the X-PGMR-Cache response header and the
// pre-admission probe accounting: miss → computed once; repeat → hit with
// no backend work; mixed multi-image request → coalesced with only the
// uncached remainder computed; no header without a caching backend.
func TestCacheHeader(t *testing.T) {
	fb := newFakeCachingBackend()
	_, ts := startServer(t, Config{Backend: fb, BatchWindow: -1})

	imA, imB := testImage(10), testImage(20)
	toJSON := func(im polygraph.Image) imageJSON {
		return imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: im.Pixels}
	}
	wantA := toPredictionJSON(fb.predict(imA))
	wantB := toPredictionJSON(fb.predict(imB))

	// Cold: miss, computed.
	resp, body := postJSON(t, ts.URL, classifyRequest{Image: ptrTo(toJSON(imA))})
	if resp.StatusCode != http.StatusOK || resp.Header.Get(cacheHeader) != "miss" {
		t.Fatalf("cold request: status %d, %s=%q (%s)", resp.StatusCode, cacheHeader, resp.Header.Get(cacheHeader), body)
	}
	if n := fb.computedImages(); n != 1 {
		t.Fatalf("cold request computed %d images, want 1", n)
	}

	// Warm repeat: hit, no backend work, identical prediction.
	resp, body = postJSON(t, ts.URL, classifyRequest{Image: ptrTo(toJSON(imA))})
	if resp.StatusCode != http.StatusOK || resp.Header.Get(cacheHeader) != "hit" {
		t.Fatalf("warm request: status %d, %s=%q", resp.StatusCode, cacheHeader, resp.Header.Get(cacheHeader))
	}
	var cr classifyResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Prediction == nil || !reflect.DeepEqual(*cr.Prediction, wantA) {
		t.Fatalf("cached prediction %+v, want %+v", cr.Prediction, wantA)
	}
	if n := fb.computedImages(); n != 1 {
		t.Fatalf("warm request recomputed: %d images", n)
	}

	// Mixed request: cached A + cold B → coalesced, only B computed.
	resp, body = postJSON(t, ts.URL, classifyRequest{Images: []imageJSON{toJSON(imA), toJSON(imB)}})
	if resp.StatusCode != http.StatusOK || resp.Header.Get(cacheHeader) != "coalesced" {
		t.Fatalf("mixed request: status %d, %s=%q (%s)", resp.StatusCode, cacheHeader, resp.Header.Get(cacheHeader), body)
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cr.Predictions, []predictionJSON{wantA, wantB}) {
		t.Fatalf("mixed predictions %+v, want [%+v %+v]", cr.Predictions, wantA, wantB)
	}
	if n := fb.computedImages(); n != 2 {
		t.Fatalf("mixed request computed %d total images, want 2 (B only)", n)
	}

	// One more warm probe: the occupancy gauges are snapshots taken at probe
	// time, so this refreshes them after B's insertion.
	resp, _ = postJSON(t, ts.URL, classifyRequest{Image: ptrTo(toJSON(imB))})
	if resp.StatusCode != http.StatusOK || resp.Header.Get(cacheHeader) != "hit" {
		t.Fatalf("warm B request: status %d, %s=%q", resp.StatusCode, cacheHeader, resp.Header.Get(cacheHeader))
	}

	// Telemetry: probe counters and occupancy gauges are exported.
	exp := scrape(t, ts.URL)
	if v := metricValue(t, exp, "pgmr_cache_hits_total"); v != 3 {
		t.Errorf("pgmr_cache_hits_total = %d, want 3", v)
	}
	if v := metricValue(t, exp, "pgmr_cache_misses_total"); v != 2 {
		t.Errorf("pgmr_cache_misses_total = %d, want 2", v)
	}
	if v := metricValue(t, exp, "pgmr_cache_entries"); v != 2 {
		t.Errorf("pgmr_cache_entries = %d, want 2", v)
	}
	if v := metricValue(t, exp, "pgmr_cache_bytes"); v <= 0 {
		t.Errorf("pgmr_cache_bytes = %d, want > 0", v)
	}
}

// TestNoCacheHeaderWithoutProber: a backend without the CacheProber surface
// must not grow the header.
func TestNoCacheHeaderWithoutProber(t *testing.T) {
	fb := newFakeBackend()
	_, ts := startServer(t, Config{Backend: fb, BatchWindow: -1})
	resp, _ := postJSON(t, ts.URL, classifyRequest{Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: testImage(1).Pixels}})
	if h, ok := resp.Header[cacheHeader]; ok {
		t.Errorf("%s=%q set without a caching backend", cacheHeader, h)
	}
}

// TestCacheHitServedWhileSaturated is the satellite guarantee: a fully
// cached request is answered 200 while the admission queue is saturated and
// shedding new work with 429 — hits never consume queue slots.
func TestCacheHitServedWhileSaturated(t *testing.T) {
	fb := newFakeCachingBackend()
	s, ts := startServer(t, Config{Backend: fb, BatchWindow: -1, QueueDepth: 1})

	// Prime the cache with image 1 while the backend is open.
	prime, _ := postJSON(t, ts.URL, classifyRequest{Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: testImage(1).Pixels}})
	if prime.StatusCode != http.StatusOK {
		t.Fatalf("prime request: %d", prime.StatusCode)
	}

	// Saturate: gate the backend, park one request at the gate and one in
	// the single queue slot (the TestAdmissionControl recipe).
	fb.gated.Store(true)
	for len(fb.entered) > 0 {
		<-fb.entered
	}
	send := func(seed int, out chan<- *http.Response) {
		req := classifyRequest{Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: testImage(seed).Pixels}}
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			out <- nil
			return
		}
		out <- resp
	}
	r1 := make(chan *http.Response, 1)
	go send(2, r1)
	select {
	case <-fb.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the backend")
	}
	r2 := make(chan *http.Response, 1)
	go send(3, r2)
	deadline := time.Now().Add(5 * time.Second)
	for s.depth.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never occupied the queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Uncached request: shed with 429.
	resp, body := postJSON(t, ts.URL, classifyRequest{Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: testImage(4).Pixels}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("uncached under saturation: status %d (%s), want 429", resp.StatusCode, body)
	}

	// Cached request: served despite the saturated queue.
	resp, body = postJSON(t, ts.URL, classifyRequest{Image: &imageJSON{Channels: 1, Height: 2, Width: 2, Pixels: testImage(1).Pixels}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached under saturation: status %d (%s), want 200", resp.StatusCode, body)
	}
	if h := resp.Header.Get(cacheHeader); h != "hit" {
		t.Errorf("cached under saturation: %s=%q, want hit", cacheHeader, h)
	}
	var cr classifyResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	want := toPredictionJSON(fb.predict(testImage(1)))
	if cr.Prediction == nil || !reflect.DeepEqual(*cr.Prediction, want) {
		t.Errorf("cached prediction under saturation = %+v, want %+v", cr.Prediction, want)
	}

	close(fb.gate)
	for _, ch := range []chan *http.Response{r1, r2} {
		select {
		case resp := <-ch:
			if resp != nil {
				resp.Body.Close()
			}
		case <-time.After(5 * time.Second):
			t.Fatal("parked request never finished")
		}
	}
}

func ptrTo[T any](v T) *T { return &v }
