package polygraph

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cache"
)

// cachedTestSystem attaches a prediction cache to the hand-assembled test
// system, the way Build does when Options.Cache is set.
func cachedTestSystem(t *testing.T) *System {
	t.Helper()
	s := testSystem(t)
	s.sys.Workers = 1 // bit-exact engine: cached results must DeepEqual uncached
	s.sys.EnableCache(cache.Config{MaxBytes: 1 << 20, TTL: time.Hour, Shards: 4}, "bits=0")
	return s
}

// TestPublicCacheRoundTrip covers the public cache surface: CacheLookup
// misses before the first classification, hits after it with the identical
// prediction, and CacheStats reflects the traffic.
func TestPublicCacheRoundTrip(t *testing.T) {
	s := cachedTestSystem(t)
	plain := testSystem(t)
	plain.sys.Workers = 1
	plain.sys.Members = s.sys.Members
	im := testImage(21)

	if _, ok := s.CacheLookup(im); ok {
		t.Fatal("hit on cold cache")
	}
	want, err := plain.Classify(im)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Classify(im)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("cached system Classify = %+v; uncached %+v", got, want)
	}
	hit, ok := s.CacheLookup(im)
	if !ok || !reflect.DeepEqual(hit, want) {
		t.Fatalf("CacheLookup after Classify = %+v, %v; want %+v, true", hit, ok, want)
	}
	st := s.CacheStats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("CacheStats = %+v; want hits, misses, one entry", st)
	}

	// Duplicate-heavy batch: dedup + hits, predictions unchanged.
	batch := []Image{im, testImage(22), im, testImage(22), im}
	wantBatch, err := plain.ClassifyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	gotBatch, err := s.ClassifyBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantBatch, gotBatch) {
		t.Fatalf("cached ClassifyBatch = %+v; uncached %+v", gotBatch, wantBatch)
	}
	if st := s.CacheStats(); st.Coalesced == 0 {
		t.Fatalf("duplicate-heavy batch recorded no coalescing: %+v", st)
	}
}

// TestPublicCacheDisabled: without a cache, the probe surface reports
// nothing rather than erroring.
func TestPublicCacheDisabled(t *testing.T) {
	s := testSystem(t)
	if _, ok := s.CacheLookup(testImage(1)); ok {
		t.Error("CacheLookup hit with no cache attached")
	}
	if st := s.CacheStats(); st != (CacheStats{}) {
		t.Errorf("CacheStats with no cache = %+v; want zero", st)
	}
}

// TestPublicCacheLookupValidates: invalid or mismatched images miss rather
// than panic.
func TestPublicCacheLookupValidates(t *testing.T) {
	s := cachedTestSystem(t)
	if _, ok := s.CacheLookup(Image{}); ok {
		t.Error("CacheLookup hit on invalid image")
	}
	wrong := Image{Channels: 3, Height: 8, Width: 8, Pixels: make([]float64, 3*8*8)}
	if _, ok := s.CacheLookup(wrong); ok {
		t.Error("CacheLookup hit on shape-mismatched image")
	}
}
